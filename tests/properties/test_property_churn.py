"""Property-based test: safety under random membership churn.

Random interleavings of crashes, graceful leaves, and leader rotations
while traffic flows.  Safety (integrity, total order, sequence
consistency) must hold unconditionally; the run must also stay live
(the run_until would time out on deadlock, failing the test).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checker import (
    check_integrity,
    check_sequence_consistency,
    check_total_order,
)
from repro.core.fsr import FSRConfig
from tests.conftest import small_cluster


churn_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "ops": st.lists(
            st.tuples(
                st.sampled_from(["crash", "leave", "rotate"]),
                st.integers(0, 5),
            ),
            min_size=1,
            max_size=3,
        ),
        "messages": st.integers(2, 5),
    }
)


@given(churn_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_safety_under_membership_churn(params):
    n = 6
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=1), seed=params["seed"])
    cluster.start()
    cluster.run(until=5e-3)

    gone = set()

    def live_members():
        return [p for p in range(n) if p not in gone]

    # Broadcast a first wave from everyone.
    for pid in range(n):
        for _ in range(params["messages"]):
            cluster.broadcast(pid, size_bytes=2_000)

    # Apply churn operations, spaced far enough apart for each view
    # change to complete (t = 1: at most one *crash* per view epoch, so
    # settle between operations).
    at = 0.03
    for op, index in params["ops"]:
        candidates = live_members()
        if len(candidates) <= 2:
            break
        victim = candidates[index % len(candidates)]
        if op == "crash":
            cluster.schedule_crash(victim, time=at)
            gone.add(victim)
        elif op == "leave":
            cluster.sim.schedule(
                at, cluster.nodes[victim].membership.request_leave
            )
            gone.add(victim)
        else:  # rotate
            cluster.sim.schedule(
                at,
                cluster.nodes[victim].membership.request_leader_rotation,
            )
        at += 0.12
        cluster.run(until=at)

    survivors = live_members()
    # A second wave from the survivors must complete (liveness).
    for pid in survivors:
        cluster.broadcast(pid, size_bytes=2_000)

    def survivors_got_second_wave():
        for p in survivors:
            count = sum(
                1
                for d in cluster.nodes[p].app_deliveries
                if d.origin in survivors
            )
            if count < params["messages"] * len(survivors) + len(survivors):
                return False
        return True

    cluster.run_until(survivors_got_second_wave, step_s=20e-3, max_time_s=120)
    cluster.run(until=cluster.sim.now + 20e-3)

    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
