"""Property-based tests on core data structures and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsr.fairness import FairSendScheduler
from repro.core.fsr.holdback import HoldbackEntry, HoldbackQueue
from repro.core.fsr.messages import FwdData
from repro.core.fsr.ring import Ring
from repro.core.fsr.segmentation import Reassembler, split_payload
from repro.metrics.stats import jain_index, mean, percentile
from repro.types import MessageId


# ---------------------------------------------------------------------------
# Hold-back queue: any arrival permutation yields in-order delivery.
# ---------------------------------------------------------------------------
@given(st.permutations(list(range(1, 12))))
@settings(max_examples=50, deadline=None)
def test_holdback_delivers_in_order_whatever_the_arrival_order(order):
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    for seq in order:
        queue.mark_deliverable(
            HoldbackEntry(
                sequence=seq,
                message_id=MessageId(origin=0, local_seq=seq),
                payload=None,
                payload_size=0,
            )
        )
    assert released == sorted(order)


# ---------------------------------------------------------------------------
# Segmentation: split/reassemble round-trips any bytes payload.
# ---------------------------------------------------------------------------
@given(
    payload=st.binary(min_size=0, max_size=5_000),
    segment_size=st.integers(min_value=1, max_value=2_000),
)
@settings(max_examples=80, deadline=None)
def test_segmentation_round_trip(payload, segment_size):
    mid = MessageId(origin=1, local_seq=1)
    segments = split_payload(mid, payload, len(payload), segment_size)
    assert sum(s.size_bytes for s in segments) == len(payload)
    assert all(s.size_bytes <= segment_size for s in segments) or len(payload) == 0
    reassembler = Reassembler()
    outputs = [reassembler.on_segment(s) for s in segments]
    completed = [o for o in outputs if o is not None]
    assert len(completed) == 1
    rebuilt, size = completed[0]
    assert rebuilt == payload
    assert size == len(payload)


# ---------------------------------------------------------------------------
# Fairness scheduler: conservation — everything enqueued is eventually
# popped exactly once, whatever the interleaving.
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(["fwd", "own"]), st.integers(0, 4)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_fairness_scheduler_conserves_messages(events):
    scheduler = FairSendScheduler()
    enqueued = []
    counter = 0
    for kind, origin in events:
        counter += 1
        message = FwdData(
            message_id=MessageId(origin=origin, local_seq=counter),
            origin=origin if kind == "fwd" else 9,
            payload=None,
            payload_size=10,
            view_id=0,
        )
        enqueued.append(message.message_id)
        if kind == "fwd":
            scheduler.enqueue_forward(message)
        else:
            scheduler.enqueue_own(message)
    popped = []
    while True:
        message = scheduler.pop_next()
        if message is None:
            break
        popped.append(message.message_id)
    assert sorted(popped, key=str) == sorted(enqueued, key=str)


# ---------------------------------------------------------------------------
# Ring arithmetic.
# ---------------------------------------------------------------------------
@given(
    n=st.integers(min_value=1, max_value=12),
    t=st.integers(min_value=0, max_value=11),
)
@settings(max_examples=60, deadline=None)
def test_ring_successor_predecessor_inverse(n, t):
    if t >= n:
        t = n - 1
    ring = Ring(members=tuple(range(100, 100 + n)), t=t)
    for pid in ring.members:
        assert ring.predecessor(ring.successor(pid)) == pid
        assert ring.successor(ring.predecessor(pid)) == pid


@given(
    n=st.integers(min_value=2, max_value=12),
    t=st.integers(min_value=0, max_value=11),
)
@settings(max_examples=60, deadline=None)
def test_ring_latency_formula_bounds(n, t):
    if t >= n:
        t = n - 1
    ring = Ring(members=tuple(range(n)), t=t)
    for position in range(n):
        latency = ring.latency_rounds(position)
        # At least one full circulation; at most two plus the backups.
        assert n - 1 <= latency <= 2 * n + t


# ---------------------------------------------------------------------------
# Statistics invariants.
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_percentile_within_bounds(values):
    assert min(values) <= percentile(values, 50) <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_jain_index_bounds(values):
    index = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_mean_within_bounds(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6
