"""Property-based tests: uniform total order under random scenarios.

These are the heavyweight guarantees of the library: whatever the
cluster size, backup count, workload shape, message sizes, seeds, and
crash schedule, the checkers must hold.  Hypothesis shrinks failures to
minimal scenarios.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checker import (
    check_all,
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
)
from repro.core.fsr import FSRConfig
from tests.conftest import fast_params, small_cluster


workload_strategy = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=2, max_value=6),
        "t": st.integers(min_value=0, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**16),
        "sizes": st.lists(
            st.integers(min_value=1, max_value=20_000), min_size=1, max_size=12
        ),
    }
)


@given(workload_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fsr_total_order_random_workloads(params):
    n = params["n"]
    t = min(params["t"], n - 1)
    cluster = small_cluster(
        n=n, protocol_config=FSRConfig(t=t), seed=params["seed"]
    )
    cluster.start()
    cluster.run(until=5e-3)
    for index, size in enumerate(params["sizes"]):
        sender = (index * 7 + params["seed"]) % n
        cluster.broadcast(sender, size_bytes=size)
    cluster.run_until(
        lambda: cluster.all_correct_delivered(len(params["sizes"])),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 5e-3)
    check_all(cluster.results())


crash_strategy = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=3, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**16),
        "victim_index": st.integers(min_value=0, max_value=5),
        "crash_at_ms": st.integers(min_value=6, max_value=80),
        "messages": st.integers(min_value=2, max_value=8),
        "protocol": st.sampled_from(["fsr", "fixed_sequencer"]),
    }
)


@given(crash_strategy)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_uniformity_random_single_crash(params):
    """Both fault-tolerant protocols keep uniform total order under
    randomised single crashes."""
    n = params["n"]
    victim = params["victim_index"] % n
    protocol = params["protocol"]
    cluster = small_cluster(
        n=n,
        protocol=protocol,
        protocol_config=FSRConfig(t=1) if protocol == "fsr" else None,
        seed=params["seed"],
    )
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(n):
        for _ in range(params["messages"]):
            cluster.broadcast(pid, size_bytes=2_000)
    cluster.schedule_crash(victim, time=params["crash_at_ms"] / 1000.0)
    expected = params["messages"] * (n - 1)
    survivors = [p for p in range(n) if p != victim]
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != victim)
            >= expected
            for p in survivors
        ),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 10e-3)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_uniformity(result)


two_crash_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**16),
        "victims": st.sets(
            st.integers(min_value=0, max_value=5), min_size=2, max_size=2
        ),
        "gap_ms": st.integers(min_value=0, max_value=30),
        "crash_at_ms": st.integers(min_value=6, max_value=50),
    }
)


@given(two_crash_strategy)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fsr_uniformity_two_crashes_t2(params):
    n = 6
    victims = sorted(params["victims"])
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=2), seed=params["seed"])
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(n):
        for _ in range(4):
            cluster.broadcast(pid, size_bytes=2_000)
    t0 = params["crash_at_ms"] / 1000.0
    cluster.schedule_crash(victims[0], time=t0)
    cluster.schedule_crash(victims[1], time=t0 + params["gap_ms"] / 1000.0)
    survivors = [p for p in range(n) if p not in victims]
    expected = 4 * (n - 2)
    cluster.run_until(
        lambda: all(
            sum(
                1
                for d in cluster.nodes[p].app_deliveries
                if d.origin not in victims
            )
            >= expected
            for p in survivors
        ),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 10e-3)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_uniformity(result)
