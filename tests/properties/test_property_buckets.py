"""Property tests for the multi-ring bucket/slot arithmetic.

The determinism of the multiplexed global order rests on three
arithmetic facts (DESIGN.md §5f): every sequence slot belongs to
exactly one bucket; the epoch rotation is a permutation of the bucket
space (full coverage, no overlap); and every mapping is a pure function
of its inputs — any two nodes agreeing on the epoch agree on every
assignment.  Hypothesis sweeps the parameter space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.multiring.buckets import (
    bucket_of_sender,
    bucket_of_slot,
    offset_for_ring,
    ring_of_bucket,
    ring_of_sender,
    ring_of_slot,
    rotated_members,
)

#: shards and a bucket count that is a valid multiple of it.
shards_and_buckets = st.tuples(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
).map(lambda sk: (sk[0], sk[0] * sk[1]))

epochs = st.integers(min_value=0, max_value=10_000)
senders = st.integers(min_value=0, max_value=2**63 - 1)
slots = st.integers(min_value=0, max_value=2**32)


@given(shards_and_buckets, slots)
def test_every_slot_lands_in_exactly_one_bucket(sb, slot):
    shards, num_buckets = sb
    bucket = bucket_of_slot(slot, num_buckets)
    assert 0 <= bucket < num_buckets
    # Exactly one: any window of num_buckets consecutive slots covers
    # every bucket once (the slot -> bucket map is periodic and bijective
    # on each period).
    window = [bucket_of_slot(slot + i, num_buckets) for i in range(num_buckets)]
    assert sorted(window) == list(range(num_buckets))


@given(shards_and_buckets, epochs)
def test_rotation_preserves_coverage_without_overlap(sb, epoch):
    shards, num_buckets = sb
    per_ring = {}
    for bucket in range(num_buckets):
        ring = ring_of_bucket(bucket, epoch, shards)
        assert 0 <= ring < shards
        per_ring.setdefault(ring, []).append(bucket)
    # Full coverage, no overlap, and an even split: the rotation is a
    # permutation of the identity partition.
    assert sorted(b for bs in per_ring.values() for b in bs) == list(
        range(num_buckets)
    )
    assert all(len(bs) == num_buckets // shards for bs in per_ring.values())
    # The next epoch shifts every bucket by exactly one ring.
    for bucket in range(num_buckets):
        assert ring_of_bucket(bucket, epoch + 1, shards) == (
            ring_of_bucket(bucket, epoch, shards) + 1
        ) % shards


@given(shards_and_buckets, epochs, senders)
def test_assignment_is_deterministic_across_nodes(sb, epoch, sender):
    shards, num_buckets = sb
    # Two nodes with the same epoch compute the identical assignment —
    # the mapping depends on nothing but its arguments.
    a = ring_of_sender(sender, epoch, shards, num_buckets)
    b = ring_of_sender(sender, epoch, shards, num_buckets)
    assert a == b
    assert a == ring_of_bucket(
        bucket_of_sender(sender, num_buckets), epoch, shards
    )


@given(shards_and_buckets, epochs, slots)
def test_slot_ring_is_epoch_independent_and_bucket_consistent(sb, epoch, slot):
    shards, num_buckets = sb
    # The mux mapping must NOT rotate with the epoch (nodes install
    # views at different local times) ...
    assert ring_of_slot(slot, shards) == slot % shards
    # ... and must agree with bucket arithmetic at epoch 0, which is
    # what makes "bucket interleaving" and "slot round-robin" the same
    # rule when num_buckets % shards == 0.
    assert bucket_of_slot(slot, num_buckets) % shards == ring_of_slot(
        slot, shards
    )


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=60)
def test_rotated_members_are_permutations_sharing_successors(shards, n):
    members = tuple(range(n))

    def succ(ring_members, node):
        return ring_members[(ring_members.index(node) + 1) % n]

    for ring in range(shards):
        rotated = rotated_members(members, ring, shards)
        assert sorted(rotated) == list(members)
        assert rotated[0] == offset_for_ring(ring, n, shards)
        for node in members:
            assert succ(rotated, node) == succ(members, node)
