"""Live loopback smoke for the multi-ring protocol.

Real OS processes, real TCP sockets, S=2 rings per node (one listening
port per ring).  The satellite guarantee: the sharded protocol runs on
the live runtime, deliveries come back ring/slot-tagged, and the merged
result passes the full battery including the shard-interleave checker.
"""

import pytest

from repro.checker.order import check_all
from repro.live.runner import LiveClusterSpec, run_live_cluster

pytestmark = pytest.mark.live_smoke


def test_live_loopback_multiring_total_order():
    spec = LiveClusterSpec(
        processes=3,
        senders=2,
        t=1,
        shards=2,
        message_bytes=10_000,
        duration_s=0.6,
        window=2,
        settle_s=0.2,
        quiet_s=0.3,
        max_run_s=45.0,
        sim_compare=False,
    )
    live = run_live_cluster(spec)
    assert live.order_ok, live.order_error
    assert not live.timed_out
    assert live.metrics.messages_completed >= 1
    # The battery (incl. shard interleave) on the merged result.
    check_all(live.result)

    # Every delivery came back tagged with a valid ring and a slot
    # consistent with the static interleaving rule.
    for record in live.node_records.values():
        deliveries = record["deliveries"]
        assert deliveries
        for entry in deliveries:
            assert 0 <= entry["ring"] < spec.shards
            assert entry["slot"] % spec.shards == entry["ring"]
    # Ring/slot tags survived the merge into the ExperimentResult.
    for log in live.result.delivery_logs.values():
        assert all(
            d.ring is not None and d.slot is not None for d in log.deliveries
        )
