"""Tests for the asyncio ring transport (real loopback sockets)."""

import asyncio
import socket

import pytest

from repro.core.fsr.messages import AckBatch, AckMsg, FwdData
from repro.errors import NetworkError
from repro.live.transport import RingTransport
from repro.types import MessageId


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _sample_message(seq=1):
    return FwdData(
        message_id=MessageId(0, seq),
        origin=0,
        payload=b"p" * 64,
        payload_size=64,
        view_id=0,
        piggybacked=[AckMsg(MessageId(1, 2), 3, True, 0)],
    )


def test_two_node_ring_delivers_frames():
    async def main():
        port_a, port_b = _free_port(), _free_port()
        received = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: received.append(("at_b_is_wrong", src, msg)),
        )
        b = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: received.append(("at_b", src, msg)),
        )
        # Re-point a's handler: messages a receives come from b.
        a.on_message = lambda src, msg: received.append(("at_a", src, msg))
        await a.start()
        await b.start()
        assert await a.wait_outbound_connected(5.0)
        assert await b.wait_outbound_connected(5.0)
        assert await a.wait_inbound_hello(5.0)
        assert await b.wait_inbound_hello(5.0)

        first, second = _sample_message(1), _sample_message(2)
        a.send(1, first)
        a.send(1, second)
        b.send(0, AckBatch(acks=[], view_id=0))
        for _ in range(100):
            if len(received) >= 3:
                break
            await asyncio.sleep(0.01)

        at_b = [entry for entry in received if entry[0] == "at_b"]
        assert [entry[2] for entry in at_b] == [first, second]  # FIFO
        assert all(entry[1] == 0 for entry in at_b)  # true source id
        at_a = [entry for entry in received if entry[0] == "at_a"]
        assert len(at_a) == 1 and at_a[0][1] == 1
        assert a.frames_sent == 2 and b.frames_received == 2
        await a.close()
        await b.close()

    asyncio.run(main())


def test_send_to_non_successor_rejected():
    async def main():
        transport = RingTransport(
            0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", _free_port()),
            lambda src, msg: None,
        )
        with pytest.raises(NetworkError, match="successor"):
            transport.send(2, _sample_message())

    asyncio.run(main())


def test_reconnects_when_successor_comes_up_late():
    """The transport retries with backoff until the peer listens."""

    async def main():
        port_a, port_b = _free_port(), _free_port()
        received = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: None,
            reconnect_base_s=0.02,
        )
        await a.start()
        a.send(1, _sample_message())  # queued while disconnected
        await asyncio.sleep(0.15)  # several failed attempts
        b = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: received.append((src, msg)),
        )
        await b.start()
        assert await a.wait_outbound_connected(5.0)
        for _ in range(100):
            if received:
                break
            await asyncio.sleep(0.01)
        assert received and received[0][0] == 0
        assert a.reconnects >= 1
        await a.close()
        await b.close()

    asyncio.run(main())


def test_gives_up_after_max_retries():
    async def main():
        a = RingTransport(
            0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", _free_port()),
            lambda src, msg: None,
            reconnect_base_s=0.005,
            reconnect_cap_s=0.01,
            max_retries=3,
        )
        await a.start()
        for _ in range(200):
            if a.failure is not None:
                break
            await asyncio.sleep(0.01)
        assert a.failure is not None and "unreachable" in a.failure
        await a.close()

    asyncio.run(main())


def test_tx_backpressure_gate():
    async def main():
        a = RingTransport(
            0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", _free_port()),
            lambda src, msg: None,
            max_outbound_bytes=100,
        )
        reopened = []
        a.on_tx_idle(lambda: reopened.append(True))
        assert a.tx_ready
        a.send(1, _sample_message())  # ~124-byte frame queued, no connection
        assert not a.tx_ready
        assert a.queued_bytes > 0
        await a.close()

    asyncio.run(main())


def test_backoff_jitter_is_seeded_and_bounded():
    import random

    async def main():
        def build(rng):
            return RingTransport(
                0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", _free_port()),
                lambda src, msg: None,
                rng=rng,
            )

        a, b = build(random.Random("replay")), build(random.Random("replay"))
        seq_a = [a._backoff(r) for r in range(1, 8)]
        seq_b = [b._backoff(r) for r in range(1, 8)]
        # Same seed, same reconnect schedule: chaos runs replay exactly.
        assert seq_a == seq_b
        for retries, delay in enumerate(seq_a, start=1):
            base = min(
                a.reconnect_cap_s, a.reconnect_base_s * 2 ** (retries - 1)
            )
            assert 0.75 * base <= delay <= 1.25 * base
        # A different seed desynchronises the stampede.
        c = build(random.Random("other"))
        assert [c._backoff(r) for r in range(1, 8)] != seq_a
        for transport in (a, b, c):
            await transport.close()

    asyncio.run(main())
