"""Transport fast-path tests: coalescing, ack riding, wire parity.

Real loopback sockets throughout.  The load-bearing claims:

* with batching enabled, frames queued together leave in one batch
  frame (one write + one drain) and arrive in FIFO order;
* pending ``AckBatch``es ride the same flush as data frames
  (``acks_ridden``) instead of paying their own syscall;
* with batching *disabled* the byte stream is exactly the unbatched
  wire: ``Hello`` frame followed by each message's plain frame — the
  parity that keeps sim/live throughput comparable;
* a lone message under batching still ships as a plain frame;
* the control peer coalesces queued frames per wakeup;
* config validation and serde match the sim path.
"""

import asyncio
import socket

import pytest

from repro.core.batching import BatchingConfig
from repro.core.fsr.messages import AckBatch, AckMsg, FwdData
from repro.errors import ConfigurationError
from repro.live.codec import Hello, encode_frame
from repro.live.node import LiveNodeConfig
from repro.live.runner import LiveClusterSpec
from repro.live.transport import RingTransport
from repro.types import MessageId


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _sample_message(seq=1, payload=64):
    return FwdData(
        message_id=MessageId(0, seq),
        origin=0,
        payload=b"p" * payload,
        payload_size=payload,
        view_id=0,
        piggybacked=[AckMsg(MessageId(1, 2), 3, True, 0)],
    )


def _pair(port_a, port_b, received, batching):
    a = RingTransport(
        0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
        lambda src, msg: None,
        batching=batching,
    )
    b = RingTransport(
        1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
        lambda src, msg: received.append((src, msg)),
    )
    return a, b


def test_batched_queue_coalesces_into_batch_frames():
    async def main():
        received = []
        a, b = _pair(
            _free_port(), _free_port(), received,
            BatchingConfig(max_delay_s=0.02),
        )
        await a.start()
        await b.start()
        assert await a.wait_outbound_connected(5.0)

        messages = [_sample_message(seq) for seq in range(10)]
        for message in messages:
            a.send(1, message)  # same loop tick: all queued together
        for _ in range(200):
            if len(received) >= len(messages):
                break
            await asyncio.sleep(0.01)

        assert [entry[1] for entry in received] == messages  # FIFO
        assert all(entry[0] == 0 for entry in received)
        assert a.frames_sent == len(messages)
        assert b.frames_received == len(messages)
        # The whole burst left in fewer syscalls than frames.
        assert a.flushes < a.frames_sent
        assert a.batches_sent >= 1
        assert a.batched_frames >= 2
        assert b.batches_received == a.batches_sent
        await a.close()
        await b.close()

    asyncio.run(main())


def test_ack_batch_rides_with_data_frames():
    async def main():
        received = []
        a, b = _pair(
            _free_port(), _free_port(), received,
            BatchingConfig(max_delay_s=0.02),
        )
        await a.start()
        await b.start()
        assert await a.wait_outbound_connected(5.0)

        data = _sample_message(1)
        acks = AckBatch(
            acks=[AckMsg(MessageId(0, 1), 7, False, 0)],
            view_id=0, watermark=3,
        )
        a.send(1, data)
        a.send(1, acks)
        for _ in range(200):
            if len(received) >= 2:
                break
            await asyncio.sleep(0.01)

        assert [entry[1] for entry in received] == [data, acks]
        assert a.acks_ridden == 1  # shared a flush with the data frame
        await a.close()
        await b.close()

    asyncio.run(main())


async def _capture_stream(port, chunks, stop):
    async def handle(reader, writer):
        while not reader.at_eof():
            data = await reader.read(65536)
            if not data:
                break
            chunks.append(data)
        stop.set()
        writer.close()

    return await asyncio.start_server(handle, "127.0.0.1", port)


def _raw_wire_bytes(transport_factory, messages):
    """Bytes a transport puts on the wire for ``messages``, captured by
    a raw TCP sink standing in for the successor."""

    async def main():
        port = _free_port()
        chunks, stop = [], asyncio.Event()
        server = await _capture_stream(port, chunks, stop)
        transport = transport_factory(port)
        await transport.start()
        assert await transport.wait_outbound_connected(5.0)
        for message in messages:
            transport.send(1, message)
        for _ in range(200):
            if transport.queued_bytes == 0:
                break
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.05)  # let the sink read the tail
        await transport.close()
        server.close()
        await server.wait_closed()
        return b"".join(chunks)

    return asyncio.run(main())


def test_disabled_batching_is_byte_identical_on_the_wire():
    messages = [_sample_message(seq) for seq in range(5)]
    wire = _raw_wire_bytes(
        lambda port: RingTransport(
            0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", port),
            lambda src, msg: None,
        ),
        messages,
    )
    expected = encode_frame(Hello(node_id=0)) + b"".join(
        encode_frame(message) for message in messages
    )
    assert wire == expected


def test_lone_message_under_batching_ships_plain_frame():
    message = _sample_message(1)
    wire = _raw_wire_bytes(
        lambda port: RingTransport(
            0, ("127.0.0.1", _free_port()), 1, ("127.0.0.1", port),
            lambda src, msg: None,
            batching=BatchingConfig(max_delay_s=0.005),
        ),
        [message],
    )
    assert wire == encode_frame(Hello(node_id=0)) + encode_frame(message)


def test_control_peer_coalesces_queued_frames():
    async def main():
        port_a, port_b = _free_port(), _free_port()
        received = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: None,
            peers={1: ("127.0.0.1", port_b)},
        )
        b = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: None,
        )
        b.on_control = lambda layer, src, inner: received.append(
            (layer, src, inner)
        )
        await a.start()
        await b.start()
        for index in range(8):
            a.send_control(1, "fd", {"beat": index})
        for _ in range(200):
            if len(received) >= 8:
                break
            await asyncio.sleep(0.01)
        assert [entry[2]["beat"] for entry in received] == list(range(8))
        assert all(entry[:2] == ("fd", 0) for entry in received)
        assert a.control_frames_sent == 8
        await a.close()
        await b.close()

    asyncio.run(main())


def test_node_config_batch_serde_round_trip():
    config = LiveNodeConfig(
        node_id=0,
        members=[0, 1],
        addresses={0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
        batch_bytes=4096,
        batch_delay_s=0.001,
    )
    restored = LiveNodeConfig.from_dict(config.to_dict())
    assert restored.batch_config() == BatchingConfig(
        max_batch_bytes=4096,
        max_batch_messages=BatchingConfig().max_batch_messages,
        max_delay_s=0.001,
    )
    # All-None means batching off, surviving serde too.
    plain = LiveNodeConfig(
        node_id=0,
        members=[0, 1],
        addresses={0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
    )
    assert LiveNodeConfig.from_dict(plain.to_dict()).batch_config() is None


def test_nonpositive_batch_config_rejected_everywhere():
    with pytest.raises(ConfigurationError):
        LiveNodeConfig(
            node_id=0,
            members=[0, 1],
            addresses={0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
            batch_bytes=0,
        )
    with pytest.raises(ConfigurationError):
        LiveClusterSpec(processes=2, batch_messages=-1)
    with pytest.raises(ConfigurationError):
        LiveClusterSpec(processes=2, batch_delay_s=-0.5)


def test_cli_batch_flags_parse_on_run_and_live():
    from repro.cli import build_parser

    parser = build_parser()
    for command in (["run"], ["live"]):
        args = parser.parse_args(
            command + ["--batch-bytes", "8192", "--batch-messages", "32",
                       "--batch-delay", "0.001"]
        )
        assert args.batch_bytes == 8192
        assert args.batch_messages == 32
        assert args.batch_delay == 0.001
        defaults = parser.parse_args(command)
        assert defaults.batch_bytes is None
        assert defaults.batch_messages is None
        assert defaults.batch_delay is None
