"""Sim/live conformance: ``FSRProcess`` behaves identically on both
schedulers.

The protocol layer is scheduler-agnostic by design — the same
``FSRProcess`` runs on the discrete-event simulator and on asyncio over
TCP.  These tests pin that claim end to end: the same workload run on
both produces the same delivered sequence (single sender: bit-identical
total order; multiple senders: same message set and per-origin FIFO,
since the interleaving is timing-dependent by nature).
"""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.live.runner import LiveClusterSpec, run_live_cluster
from repro.types import MessageId
from repro.workloads import KToNPattern, run_workload

pytestmark = pytest.mark.live_smoke

MESSAGES = 8
MESSAGE_BYTES = 8_000


def _live_spec(senders):
    return LiveClusterSpec(
        processes=3,
        senders=senders,
        t=1,
        message_bytes=MESSAGE_BYTES,
        duration_s=10.0,  # unused: messages_per_sender is the stop rule
        window=2,
        settle_s=0.2,
        quiet_s=0.4,
        max_run_s=30.0,
        sim_compare=False,
        messages_per_sender=MESSAGES,
    )


def _sim_result(senders):
    cluster = build_cluster(ClusterConfig(
        n=3, protocol="fsr", protocol_config=FSRConfig(t=1),
    ))
    pattern = KToNPattern(
        senders=tuple(range(senders)),
        messages_per_sender=MESSAGES,
        message_bytes=MESSAGE_BYTES,
    )
    return run_workload(cluster, pattern).result


def _sequences(result):
    return {
        pid: [d.message_id for d in log.deliveries]
        for pid, log in result.delivery_logs.items()
    }


def test_single_sender_same_total_order_sim_and_live():
    live = run_live_cluster(_live_spec(senders=1))
    assert live.order_ok, live.order_error
    assert not live.timed_out
    sim_seqs = _sequences(_sim_result(senders=1))
    live_seqs = _sequences(live.result)

    expected = [MessageId(0, seq) for seq in range(1, MESSAGES + 1)]
    for pid in range(3):
        assert live_seqs[pid] == expected, f"live node {pid} diverged"
        assert sim_seqs[pid] == expected, f"sim node {pid} diverged"
    # Same closed-loop count on both runtimes: nothing dropped, nothing
    # extra submitted.
    assert sum(len(ids) for ids in live.outcome.sent.values()) == MESSAGES


def test_two_senders_same_message_set_and_per_origin_fifo():
    live = run_live_cluster(_live_spec(senders=2))
    assert live.order_ok, live.order_error
    sim_seqs = _sequences(_sim_result(senders=2))
    live_seqs = _sequences(live.result)

    expected_set = {
        MessageId(origin, seq)
        for origin in range(2)
        for seq in range(1, MESSAGES + 1)
    }
    for seqs in (sim_seqs, live_seqs):
        for pid, sequence in seqs.items():
            assert set(sequence) == expected_set, f"node {pid} set differs"
            for origin in range(2):
                own = [m.local_seq for m in sequence if m.origin == origin]
                assert own == sorted(own), f"origin {origin} not FIFO"
    # All nodes agree with each other inside each runtime (total order).
    assert len({tuple(s) for s in live_seqs.values()}) == 1
    assert len({tuple(s) for s in sim_seqs.values()}) == 1
