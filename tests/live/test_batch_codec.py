"""Property tests for the batch frame and the hot-path encoder.

The fast path's contract (PROTOCOL.md appendix C):

* ``decode(encode(FrameBatch)) == FrameBatch`` over arbitrary mixes of
  the batchable ring messages;
* truncated or corrupted batch bodies raise :class:`CodecError` or
  decode to something that re-encodes byte-identically — never a
  silent misparse;
* :class:`FrameEncoder` (reusable buffer, ``pack_into``) produces
  byte-identical frames to the allocating :func:`encode_frame`, so
  enabling the fast path cannot change the wire;
* ``wire_size_bytes()`` parity holds for every entry: a batch costs
  exactly :data:`BATCH_HEADER_BYTES` + the entries' plain frames, and
  the disabled-batching path stays at ``prefix + wire_size_bytes()``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsr.messages import AckBatch, FwdData, SeqData
from repro.errors import CodecError
from repro.live.codec import (
    BATCH_HEADER_BYTES,
    KIND_BATCH,
    LENGTH_PREFIX_BYTES,
    ControlFrame,
    FrameBatch,
    FrameEncoder,
    Hello,
    batch_frame_parts,
    batch_header,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)

from .test_codec_properties import ack_batch, fwd_data, seq_data

batchable = st.one_of(fwd_data(), seq_data(), ack_batch())
batches = st.builds(
    FrameBatch, messages=st.lists(batchable, min_size=0, max_size=6)
)


@given(batch=batches)
@settings(max_examples=150, deadline=None)
def test_batch_round_trip_arbitrary_mixes(batch):
    body = encode_message(batch)
    assert decode_message(body) == batch
    # Zero-copy decode path: a memoryview body decodes identically.
    assert decode_message(memoryview(body)) == batch


@given(batch=batches)
@settings(max_examples=100, deadline=None)
def test_batch_wire_size_parity(batch):
    """A batch adds exactly the 4-byte header over its plain frames,
    each of which still costs prefix + ``wire_size_bytes()``."""
    body = encode_message(batch)
    assert len(body) == BATCH_HEADER_BYTES + sum(
        LENGTH_PREFIX_BYTES + message.wire_size_bytes()
        for message in batch.messages
    )


@given(batch=batches)
@settings(max_examples=100, deadline=None)
def test_batch_frame_parts_matches_encode(batch):
    """The transport's writelines parts are byte-identical to encoding
    the equivalent :class:`FrameBatch` as one frame."""
    parts = batch_frame_parts(
        [encode_frame(message) for message in batch.messages]
    )
    assert b"".join(parts) == encode_frame(batch)


@given(batch=batches, data=st.data())
@settings(max_examples=150, deadline=None)
def test_batch_truncations_never_misparse(batch, data):
    body = encode_message(batch)
    cut = data.draw(st.integers(min_value=0, max_value=max(0, len(body) - 1)))
    try:
        decoded = decode_message(body[:cut])
    except CodecError:
        return
    assert encode_message(decoded) == body[:cut]


@given(batch=batches, data=st.data())
@settings(max_examples=150, deadline=None)
def test_batch_corruption_never_misparses(batch, data):
    """Flip one byte anywhere in a valid batch body: decode raises or
    re-encodes to exactly the corrupted bytes."""
    body = bytearray(encode_message(batch))
    if not body:
        return
    index = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
    body[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    corrupted = bytes(body)
    try:
        decoded = decode_message(corrupted)
    except CodecError:
        return
    assert encode_message(decoded) == corrupted


@given(garbage=st.binary(min_size=0, max_size=200))
@settings(max_examples=200, deadline=None)
def test_batch_prefixed_garbage_never_misparses(garbage):
    body = bytes([KIND_BATCH]) + garbage
    try:
        decoded = decode_message(body)
    except CodecError:
        return
    assert encode_message(decoded) == body


@given(
    message=st.one_of(fwd_data(), seq_data(), ack_batch(), batches),
)
@settings(max_examples=200, deadline=None)
def test_frame_encoder_byte_identical(message):
    """The reusable-buffer fast path is indistinguishable on the wire."""
    encoder = FrameEncoder(initial_capacity=16)  # force regrowth too
    assert encoder.encode_frame(message) == encode_frame(message)
    # Reuse: a second encode of a different shape from the same buffer.
    assert encoder.encode_frame(message) == encode_frame(message)


def test_non_batchable_entries_rejected_on_encode():
    for bad in (
        Hello(node_id=1),
        ControlFrame(layer="fd", inner=None),
        FrameBatch(messages=[]),
    ):
        with pytest.raises(CodecError):
            encode_message(FrameBatch(messages=[bad]))


def test_nested_batch_rejected_on_decode():
    inner = encode_frame(FrameBatch(messages=[]))
    with pytest.raises(CodecError, match="nested"):
        decode_message(batch_header(1) + inner)


def test_hello_entry_rejected_on_decode():
    frame = encode_frame(Hello(node_id=3))
    with pytest.raises(CodecError, match="ring data"):
        decode_message(batch_header(1) + frame)


def test_nonzero_batch_flags_rejected():
    body = bytearray(encode_message(FrameBatch(messages=[])))
    body[1] = 0x40
    with pytest.raises(CodecError, match="flags"):
        decode_message(bytes(body))


def test_trailing_bytes_after_batch_rejected():
    body = encode_message(FrameBatch(messages=[]))
    with pytest.raises(CodecError, match="trailing"):
        decode_message(body + b"\x00")


def test_entry_count_out_of_range():
    with pytest.raises(CodecError, match="out of range"):
        batch_header(0x10000)
    with pytest.raises(CodecError, match="out of range"):
        batch_header(-1)


def test_decode_frame_handles_batches():
    batch = FrameBatch(
        messages=[AckBatch(acks=[], view_id=0, watermark=-1)]
    )
    frame = encode_frame(batch)
    decoded, consumed = decode_frame(frame)
    assert decoded == batch
    assert consumed == len(frame)
