"""Transport behaviour under peer death: requeue, retarget, control plane.

These pin the transport-level half of live view changes: a successor
dying mid-stream must not lose queued frames (they redeliver exactly
once when it returns), ``retarget`` must re-point the ring hop and
reopen the TX gate, and the control-plane mesh must carry membership
traffic to arbitrary peers.
"""

import asyncio
import socket

import pytest

from repro.core.fsr.messages import FwdData
from repro.errors import NetworkError
from repro.live.transport import RingTransport
from repro.types import MessageId


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _message(seq, origin=0):
    return FwdData(
        message_id=MessageId(origin, seq),
        origin=origin,
        payload=b"x" * 32,
        payload_size=32,
        view_id=0,
        piggybacked=[],
    )


async def _drain_until(predicate, timeout=5.0):
    for _ in range(int(timeout / 0.01)):
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return predicate()


def test_mid_stream_kill_requeues_then_redelivers_exactly_once():
    """Frames queued while the successor is down arrive exactly once
    after it restarts on the same port, and backpressure reopens."""

    async def main():
        port_a, port_b = _free_port(), _free_port()
        received = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: None,
            reconnect_base_s=0.02,
            max_outbound_bytes=200,
            max_retries=None,
        )
        b = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: received.append(msg),
        )
        reopened = []
        a.on_tx_idle(lambda: reopened.append(True))
        await a.start()
        await b.start()
        assert await a.wait_outbound_connected(5.0)

        for seq in range(1, 4):
            a.send(1, _message(seq))
        assert await _drain_until(lambda: len(received) == 3)

        # Successor dies mid-stream; the EOF watcher notices and the
        # transport drops back to dialling.
        await b.close()
        assert await _drain_until(lambda: not a._connected.is_set())

        # Everything sent while down must queue (gate closes), not
        # vanish into a dead socket.
        batch_two = [_message(seq) for seq in range(4, 10)]
        for message in batch_two:
            a.send(1, message)
        assert a.queued_bytes > 0
        assert not a.tx_ready

        received_after = []
        b2 = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: received_after.append(msg),
        )
        await b2.start()
        assert await _drain_until(lambda: len(received_after) == 6)
        # Exactly once, in order, nothing duplicated from batch one.
        assert received_after == batch_two
        assert len(received) == 3
        # Backpressure reopened once the queue drained.
        assert await _drain_until(lambda: a.tx_ready)
        assert reopened
        assert a.reconnects >= 1
        assert a.failure is None  # max_retries=None never gives up
        await a.close()
        await b2.close()

    asyncio.run(main())


def test_retarget_repoints_ring_and_reopens_gate():
    async def main():
        port_a, port_b, port_c = _free_port(), _free_port(), _free_port()
        at_c = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: None,
            reconnect_base_s=0.02,
            max_outbound_bytes=100,
            max_retries=None,
        )
        c = RingTransport(
            2, ("127.0.0.1", port_c), 0, ("127.0.0.1", port_a),
            lambda src, msg: at_c.append(msg),
        )
        reopened = []
        a.on_tx_idle(lambda: reopened.append(True))
        await a.start()
        await c.start()

        # Successor 1 never exists; the queue backs up and the gate
        # closes — the state a crashed successor leaves behind.
        a.send(1, _message(1))
        a.send(1, _message(2))
        assert not a.tx_ready

        # View change: new ring successor is 2.  Stale queued frames
        # are dropped (the protocol rebroadcasts through recovery),
        # the gate reopens, and new traffic flows to 2.
        a.retarget(2, ("127.0.0.1", port_c))
        assert a.retargets == 1
        assert a.queued_bytes == 0
        assert await _drain_until(lambda: a.tx_ready and bool(reopened))

        with pytest.raises(NetworkError, match="successor"):
            a.send(1, _message(3))  # old successor now rejected

        fresh = _message(7)
        a.send(2, fresh)
        assert await _drain_until(lambda: at_c == [fresh])

        # Retargeting to the current successor is a no-op.
        a.retarget(2, ("127.0.0.1", port_c))
        assert a.retargets == 1
        await a.close()
        await c.close()

    asyncio.run(main())


def test_control_plane_round_trip_and_prune():
    async def main():
        port_a, port_b = _free_port(), _free_port()
        peers = {
            0: ("127.0.0.1", port_a),
            1: ("127.0.0.1", port_b),
        }
        seen = []
        a = RingTransport(
            0, ("127.0.0.1", port_a), 1, ("127.0.0.1", port_b),
            lambda src, msg: None,
            peers=peers,
        )
        b = RingTransport(
            1, ("127.0.0.1", port_b), 0, ("127.0.0.1", port_a),
            lambda src, msg: None,
            peers=peers,
        )
        b.on_control = lambda layer, src, inner: seen.append(
            (layer, src, inner)
        )
        await a.start()
        await b.start()

        a.send_control(1, "fd", {"beat": 1})
        a.send_control(1, "vsc", ("flush", 7))
        assert await _drain_until(lambda: len(seen) == 2)
        assert seen == [("fd", 0, {"beat": 1}), ("vsc", 0, ("flush", 7))]
        assert a.control_frames_sent == 2
        assert b.control_frames_received == 2
        # Control traffic never pollutes the ring data counters the
        # quiescence monitor watches.
        assert a.frames_sent == 0 and b.frames_received == 0

        with pytest.raises(NetworkError):
            a.send_control(0, "fd", "self")  # no loopback-to-self
        with pytest.raises(NetworkError):
            a.send_control(9, "fd", "who")  # unknown peer

        a.prune_control_peers({0})  # view excluded node 1
        assert not a._control_peers
        await a.close()
        await b.close()

    asyncio.run(main())
