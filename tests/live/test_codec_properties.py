"""Hypothesis round-trip properties for the binary wire codec.

``decode(encode(x)) == x`` for every FSR message type, and malformed
input (truncations, garbage) either raises :class:`CodecError` or
decodes to something that re-encodes to exactly the bytes parsed —
the codec never silently mis-parses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsr.messages import AckBatch, AckMsg, FwdData, SeqData
from repro.errors import CodecError
from repro.live.codec import (
    Hello,
    decode_message,
    encode_frame,
    encode_message,
    decode_frame,
)
from repro.types import MessageId

_pid = st.integers(min_value=0, max_value=2**31 - 1)
_local_seq = st.integers(min_value=0, max_value=2**62)
_seqno = st.integers(min_value=0, max_value=2**62)
_watermark = st.integers(min_value=-1, max_value=2**62)
_view = st.integers(min_value=0, max_value=2**31 - 1)
_payload = st.binary(max_size=300)

_message_ids = st.builds(MessageId, origin=_pid, local_seq=_local_seq)


def _acks(view_id, draw):
    count = draw(st.integers(min_value=0, max_value=4))
    return [
        AckMsg(
            message_id=draw(_message_ids),
            sequence=draw(_seqno),
            stable=draw(st.booleans()),
            view_id=view_id,
        )
        for _ in range(count)
    ]


def _segment(origin, draw):
    if not draw(st.booleans()):
        return None
    return (
        MessageId(origin, draw(st.integers(min_value=0, max_value=2**32 - 1))),
        draw(st.integers(min_value=0, max_value=2**32 - 1)),
        draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


@st.composite
def fwd_data(draw):
    origin = draw(_pid)
    view_id = draw(_view)
    payload = draw(_payload)
    return FwdData(
        message_id=draw(_message_ids),
        origin=origin,
        payload=payload,
        payload_size=len(payload),
        view_id=view_id,
        watermark=draw(_watermark),
        piggybacked=_acks(view_id, draw),
        segment=_segment(origin, draw),
    )


@st.composite
def seq_data(draw):
    origin = draw(_pid)
    view_id = draw(_view)
    payload = draw(_payload)
    return SeqData(
        message_id=draw(_message_ids),
        origin=origin,
        payload=payload,
        payload_size=len(payload),
        sequence=draw(_seqno),
        stable=draw(st.booleans()),
        view_id=view_id,
        watermark=draw(_watermark),
        piggybacked=_acks(view_id, draw),
        segment=_segment(origin, draw),
    )


@st.composite
def ack_batch(draw):
    view_id = draw(_view)
    return AckBatch(
        acks=_acks(view_id, draw),
        view_id=view_id,
        watermark=draw(_watermark),
    )


hello = st.builds(Hello, node_id=_pid)

any_message = st.one_of(fwd_data(), seq_data(), ack_batch(), hello)


@given(message=any_message)
@settings(max_examples=200, deadline=None)
def test_round_trip_every_message_type(message):
    assert decode_message(encode_message(message)) == message


@given(message=any_message)
@settings(max_examples=100, deadline=None)
def test_frame_round_trip(message):
    frame = encode_frame(message)
    decoded, consumed = decode_frame(frame)
    assert decoded == message
    assert consumed == len(frame)


@given(
    message=st.one_of(fwd_data(), seq_data(), ack_batch()),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_truncations_never_misparse(message, data):
    """A cut body raises, or decodes self-consistently (a shorter
    payload is indistinguishable by design — framing carries length)."""
    body = encode_message(message)
    cut = data.draw(st.integers(min_value=0, max_value=max(0, len(body) - 1)))
    try:
        decoded = decode_message(body[:cut])
    except CodecError:
        return
    assert encode_message(decoded) == body[:cut]


@given(garbage=st.binary(min_size=0, max_size=120))
@settings(max_examples=200, deadline=None)
def test_garbage_never_misparses(garbage):
    try:
        decoded = decode_message(garbage)
    except CodecError:
        return
    assert encode_message(decoded) == garbage
