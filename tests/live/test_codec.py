"""Unit tests for the binary wire codec."""

import pytest

from repro.core.fsr.messages import AckBatch, AckMsg, FwdData, SeqData
from repro.errors import CodecError
from repro.live.codec import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    Hello,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    frame_length,
)
from repro.types import MessageId


def _ack(view_id=3, stable=True):
    return AckMsg(
        message_id=MessageId(2, 5), sequence=7, stable=stable, view_id=view_id
    )


def _fwd(**overrides):
    base = dict(
        message_id=MessageId(1, 9),
        origin=1,
        payload=b"x" * 100,
        payload_size=100,
        view_id=3,
        watermark=4,
        piggybacked=[_ack()],
        segment=None,
    )
    base.update(overrides)
    return FwdData(**base)


def _seq(**overrides):
    base = dict(
        message_id=MessageId(1, 9),
        origin=1,
        payload=b"y" * 50,
        payload_size=50,
        sequence=12,
        stable=False,
        view_id=3,
        watermark=-1,
        piggybacked=[],
        segment=(MessageId(1, 4), 2, 8),
    )
    base.update(overrides)
    return SeqData(**base)


@pytest.mark.parametrize(
    "message",
    [
        _fwd(),
        _fwd(piggybacked=[], segment=(MessageId(1, 2), 0, 3)),
        _fwd(payload=b"", payload_size=0),
        _seq(),
        _seq(stable=True, segment=None, piggybacked=[_ack(), _ack(stable=False)]),
        AckBatch(acks=[_ack()], view_id=3, watermark=2),
        AckBatch(acks=[], view_id=0, watermark=-1),
        Hello(node_id=7),
    ],
)
def test_round_trip(message):
    decoded, consumed = decode_frame(encode_frame(message))
    assert decoded == message
    assert consumed == len(encode_frame(message))


@pytest.mark.parametrize(
    "message",
    [
        _fwd(),
        _fwd(segment=(MessageId(1, 2), 0, 3)),
        _seq(),
        _seq(segment=None),
        AckBatch(acks=[_ack(), _ack()], view_id=3),
    ],
)
def test_body_size_matches_wire_size_bytes(message):
    """The simulator's byte accounting is exactly what goes on the wire."""
    assert len(encode_message(message)) == message.wire_size_bytes()


def test_frame_adds_only_the_length_prefix():
    message = _fwd()
    assert (
        len(encode_frame(message))
        == LENGTH_PREFIX_BYTES + message.wire_size_bytes()
    )


def test_non_bytes_payload_rejected():
    with pytest.raises(CodecError, match="bytes"):
        encode_message(_fwd(payload=object(), payload_size=100))


def test_payload_size_mismatch_rejected():
    with pytest.raises(CodecError, match="payload"):
        encode_message(_fwd(payload=b"short", payload_size=100))


def test_ack_view_mismatch_rejected():
    """The 24-byte ack record carries no view; FSR's invariant (acks are
    created in, and cleared with, the carrier's view) is enforced."""
    with pytest.raises(CodecError, match="view"):
        encode_message(_fwd(piggybacked=[_ack(view_id=99)]))
    with pytest.raises(CodecError, match="view"):
        encode_message(AckBatch(acks=[_ack(view_id=99)], view_id=3))


def test_segment_origin_mismatch_rejected():
    """The 12-byte segment record stores only the app local_seq; a
    foreign-origin app id would not survive the round trip."""
    with pytest.raises(CodecError, match="origin"):
        encode_message(_fwd(segment=(MessageId(42, 2), 0, 3)))


def test_unknown_kind_rejected():
    with pytest.raises(CodecError, match="unknown frame kind"):
        decode_message(b"\xff" + b"\x00" * 40)


def test_empty_body_rejected():
    with pytest.raises(CodecError, match="empty"):
        decode_message(b"")


def test_truncated_header_rejected():
    body = encode_message(_fwd())
    with pytest.raises(CodecError, match="truncated"):
        decode_message(body[:10])


def test_truncated_ack_region_rejected():
    # Empty payload: any cut lands in the header/ack region.
    body = encode_message(_fwd(payload=b"", payload_size=0))
    for cut in range(1, len(body)):
        with pytest.raises(CodecError):
            decode_message(body[:cut])


def test_trailing_bytes_after_ack_batch_rejected():
    body = encode_message(AckBatch(acks=[_ack()], view_id=3))
    with pytest.raises(CodecError, match="trailing"):
        decode_message(body + b"\x00")


def test_frame_length_of_short_buffer_is_none():
    assert frame_length(b"\x00\x00") is None


def test_frame_length_rejects_oversized_announcement():
    huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(CodecError, match="MAX_FRAME_BYTES"):
        frame_length(huge)


def test_decode_frame_rejects_incomplete_frame():
    frame = encode_frame(_fwd())
    with pytest.raises(CodecError, match="incomplete"):
        decode_frame(frame[:-1])


def test_unrepresentable_field_rejected():
    with pytest.raises(CodecError, match="unrepresentable"):
        encode_message(_fwd(view_id=2**40))
