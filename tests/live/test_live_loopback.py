"""Live loopback smoke tests: real OS processes, real TCP sockets.

These spawn ``python -m repro live-node`` subprocesses, so they are the
one place in the tier-1 suite where FSR runs over genuine sockets.  The
cluster is kept small and the duration short.
"""

import json

import pytest

from repro.checker.order import check_all
from repro.live.runner import (
    LiveClusterSpec,
    run_live_benchmark,
    run_live_cluster,
)

pytestmark = pytest.mark.live_smoke


def _smoke_spec(**overrides):
    base = dict(
        processes=3,
        senders=1,
        t=1,
        message_bytes=10_000,
        duration_s=0.6,
        window=2,
        settle_s=0.2,
        quiet_s=0.3,
        max_run_s=30.0,
        sim_compare=False,
    )
    base.update(overrides)
    return LiveClusterSpec(**base)


def test_live_loopback_total_order():
    live = run_live_cluster(_smoke_spec())
    assert live.order_ok, live.order_error
    assert not live.timed_out
    # Every node processed real traffic.
    for record in live.node_records.values():
        assert record["stats"]["frames_received"] > 0
    # The sender actually completed messages through the real ring.
    assert live.metrics.messages_completed >= 1
    # Identical total order is also directly checkable on the merged
    # result with the standard oracle (raises on violation).
    check_all(live.result)


def test_live_loopback_two_senders():
    live = run_live_cluster(_smoke_spec(senders=2))
    assert live.order_ok, live.order_error
    assert set(live.outcome.sent) == {0, 1}
    assert all(ids for ids in live.outcome.sent.values())


def test_live_benchmark_writes_bench_record(tmp_path):
    out = tmp_path / "BENCH_live.json"
    payload = run_live_benchmark(_smoke_spec(), out_path=str(out))
    on_disk = json.loads(out.read_text())
    assert on_disk == payload
    assert on_disk["schema"] == "repro.bench_live/1"
    assert on_disk["order_check"]["ok"] is True
    assert on_disk["live"]["metrics"]["messages_completed"] >= 1
    assert on_disk["model"]["fsr_mbps"] > 0
    # sim comparison disabled in the smoke spec
    assert on_disk["sim"] is None


@pytest.mark.slow
def test_live_benchmark_with_sim_comparison(tmp_path):
    out = tmp_path / "BENCH_live.json"
    payload = run_live_benchmark(
        _smoke_spec(sim_compare=True), out_path=str(out)
    )
    assert payload["sim"] is not None
    assert payload["sim"]["metrics"]["completion_throughput_mbps"] > 0
