"""Regression: a node dying at startup must not orphan its siblings.

Before the ``LiveCluster`` refactor, a node that failed to bind its
port made the launcher sit out the *full* run deadline while the dead
node's siblings idled, and the ``finally`` path killed without
``wait()``-ing — leaking zombies.  These tests pin the fixed
behaviour: fail fast, and reap everything.
"""

import socket
import tempfile
import time

import pytest

import repro.live.runner as runner
from repro.errors import NetworkError
from repro.live.runner import LiveCluster, LiveClusterSpec


def _spec():
    return LiveClusterSpec(
        processes=3,
        senders=1,
        t=1,
        message_bytes=5_000,
        duration_s=0.5,
        window=1,
        settle_s=0.1,
        quiet_s=0.2,
        max_run_s=20.0,
        connect_timeout_s=8.0,
        sim_compare=False,
    )


@pytest.mark.live_smoke
def test_startup_bind_failure_fails_fast_and_reaps_all(monkeypatch):
    # Hold one of the allocated ports so node 0's bind fails instantly.
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    blocked_port = blocker.getsockname()[1]

    real_free_ports = runner._free_ports

    def sabotaged(host, count):
        ports = real_free_ports(host, count)
        ports[0] = blocked_port
        return ports

    monkeypatch.setattr(runner, "_free_ports", sabotaged)

    spec = _spec()
    started = time.monotonic()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-reap-") as workdir:
            cluster = LiveCluster(spec, workdir)
            try:
                with pytest.raises(NetworkError, match="node 0"):
                    cluster.wait(60.0)  # fail-fast: returns on first death
                    cluster.raise_on_failures()
            finally:
                cluster.shutdown()
            elapsed = time.monotonic() - started
            # Fail-fast: well under the connect timeout the healthy
            # siblings would otherwise burn waiting for node 0.
            assert elapsed < spec.connect_timeout_s
            # Every child killed AND waited on: no zombies, no orphans.
            for pid, proc in cluster.procs.items():
                assert proc.poll() is not None, f"node {pid} not reaped"
    finally:
        blocker.close()


@pytest.mark.live_smoke
def test_launch_live_cluster_surfaces_startup_failure(monkeypatch):
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    blocked_port = blocker.getsockname()[1]

    real_free_ports = runner._free_ports

    def sabotaged(host, count):
        ports = real_free_ports(host, count)
        ports[-1] = blocked_port
        return ports

    monkeypatch.setattr(runner, "_free_ports", sabotaged)
    started = time.monotonic()
    try:
        with pytest.raises(NetworkError):
            runner.launch_live_cluster(_spec())
        assert time.monotonic() - started < _spec().connect_timeout_s
    finally:
        blocker.close()
