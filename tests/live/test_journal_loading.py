"""Unit tests for crash-surviving journal parsing (no subprocesses).

A SIGKILLed node's journal is all the evidence it leaves.  The loader
must tolerate the one corruption a kill can cause — a torn final line —
and must refuse journals that never reached the start barrier (nothing
the oracle can use, and their absence must read as "node never ran",
not as an empty delivery log).
"""

import json

from repro.live.runner import load_journal_record


def _write(path, lines, torn_tail=None):
    with open(path, "w") as handle:
        for line in lines:
            handle.write(json.dumps(line) + "\n")
        if torn_tail is not None:
            handle.write(torn_tail)  # no newline: cut mid-write
    return str(path)


def test_journal_round_trips_events_and_tolerates_torn_tail(tmp_path):
    path = _write(
        tmp_path / "node1.journal.jsonl",
        [
            {"type": "start", "time": 10.0, "node_id": 1},
            {"type": "broadcast", "time": 10.1, "origin": 1, "local_seq": 1,
             "size_bytes": 64, "submit_time": 10.1},
            {"type": "delivery", "time": 10.2, "origin": 1, "local_seq": 1,
             "sequence": 1, "size_bytes": 64},
            {"type": "view", "time": 10.3, "view_id": 1, "members": [0, 1]},
        ],
        torn_tail='{"type": "delivery", "time": 10.4, "orig',
    )
    record = load_journal_record(1, path)
    assert record is not None
    assert record["node_id"] == 1
    assert record["start_time"] == 10.0
    assert record["end_time"] == 10.3  # last *intact* event
    assert [d["local_seq"] for d in record["deliveries"]] == [1]
    assert [b["local_seq"] for b in record["broadcasts"]] == [1]
    assert record["sent"] == [{"origin": 1, "local_seq": 1}]
    assert record["views"][-1]["view_id"] == 1


def test_journal_without_start_line_is_rejected(tmp_path):
    path = _write(
        tmp_path / "node2.journal.jsonl",
        [{"type": "delivery", "time": 1.0, "origin": 0, "local_seq": 1,
          "sequence": 1, "size_bytes": 64}],
    )
    assert load_journal_record(2, path) is None


def test_missing_journal_is_rejected(tmp_path):
    assert load_journal_record(3, str(tmp_path / "absent.jsonl")) is None
