"""Tests for the asyncio-backed Scheduler implementation."""

import asyncio

from repro.live.scheduler import AsyncioScheduler
from repro.sim.engine import Simulator


def test_now_tracks_loop_time():
    async def main():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        before = sched.now
        await asyncio.sleep(0.02)
        after = sched.now
        assert after >= before + 0.01

    asyncio.run(main())


def test_schedule_fires_callback_with_args():
    fired = []

    async def main():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        sched.schedule(0.01, fired.append, "x")
        await asyncio.sleep(0.05)

    asyncio.run(main())
    assert fired == ["x"]


def test_cancel_prevents_callback():
    fired = []

    async def main():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        timer = sched.schedule(0.01, fired.append, "x")
        timer.cancel()
        timer.cancel()  # idempotent, like the simulator's TimerHandle
        await asyncio.sleep(0.05)

    asyncio.run(main())
    assert fired == []


def test_negative_delay_clamped_to_now():
    fired = []

    async def main():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        sched.schedule(-5.0, fired.append, "x")
        await asyncio.sleep(0.02)

    asyncio.run(main())
    assert fired == ["x"]


def test_both_runtimes_satisfy_the_scheduler_protocol():
    """The structural contract FSRProcess/GroupMembership rely on."""
    for runtime in (Simulator(),):
        assert hasattr(runtime, "now")
        timer = runtime.schedule(0.0, lambda: None)
        timer.cancel()

    async def live():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        assert isinstance(sched.now, float)
        timer = sched.schedule(0.0, lambda: None)
        timer.cancel()

    asyncio.run(live())
