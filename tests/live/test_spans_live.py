"""Live span tracing: per-node journals, merged timeline, conformance.

Acceptance path for the observability layer: a real multi-process run
with spans enabled must yield a merged cross-node timeline whose
per-message lifecycles match what the simulator produces for the same
workload, and whose latency-stage breakdown explains the measured
end-to-end latency (the runner's cross-check enforces 5%).
"""

from collections import Counter

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.live.runner import LiveClusterSpec, run_live_cluster
from repro.obs.analyze import STAGES, link_utilization
from repro.obs.journal import Timeline
from repro.types import MessageId
from repro.workloads import KToNPattern, run_workload

pytestmark = pytest.mark.live_smoke

MESSAGES = 8
MESSAGE_BYTES = 8_000
N = 3
T = 1
SENDERS = 2


def _live_spec():
    return LiveClusterSpec(
        processes=N,
        senders=SENDERS,
        t=T,
        message_bytes=MESSAGE_BYTES,
        duration_s=10.0,  # unused: messages_per_sender is the stop rule
        window=2,
        settle_s=0.2,
        quiet_s=0.4,
        max_run_s=30.0,
        sim_compare=False,
        messages_per_sender=MESSAGES,
        spans=True,
    )


def _sim_spans():
    cluster = build_cluster(ClusterConfig(
        n=N, protocol="fsr", protocol_config=FSRConfig(t=T), spans=True,
    ))
    pattern = KToNPattern(
        senders=tuple(range(SENDERS)),
        messages_per_sender=MESSAGES,
        message_bytes=MESSAGE_BYTES,
    )
    return run_workload(cluster, pattern).result.spans


def test_live_spans_merge_and_conform_to_sim(tmp_path):
    live = run_live_cluster(_live_spec())
    assert live.order_ok, live.order_error
    assert live.timeline is not None
    assert live.breakdown is not None

    timeline = live.timeline
    # Every node journalled: spans and final telemetry from all three.
    assert timeline.nodes() == list(range(N))
    assert set(timeline.telemetry) == set(range(N))

    expected = {
        MessageId(origin, seq)
        for origin in range(SENDERS)
        for seq in range(1, MESSAGES + 1)
    }
    assert set(timeline.messages()) == expected

    # Sim/live conformance: the same workload takes the same lifecycle
    # through the same protocol automaton — per-message span kind
    # multisets are identical across runtimes.
    sim_spans = _sim_spans()
    for message in sorted(expected):
        live_kinds = Counter(e.kind for e in timeline.lifecycle(message))
        sim_kinds = Counter(e.kind for e in sim_spans.lifecycle(message))
        assert live_kinds == sim_kinds, message
        assert timeline.lifecycle(message)[0].kind == "broadcast"

    # The stage breakdown covered every message and explains the
    # measured latency (run_live_cluster's cross-check enforces 5%;
    # assert it again explicitly as the acceptance bar).
    breakdown = live.breakdown
    assert breakdown.messages == len(expected)
    stage_sum = sum(breakdown.stages[name].mean_s for name in STAGES)
    assert stage_sum == pytest.approx(live.metrics.mean_latency_s, rel=0.05)

    # Telemetry carries real transport counters -> per-link table works.
    links = link_utilization(timeline)
    assert len(links) == N
    assert all(link.bytes_sent > 0 for link in links)

    # The merged timeline round-trips through its file format.
    path = str(tmp_path / "timeline.jsonl")
    timeline.write_jsonl(path)
    loaded = Timeline.load_jsonl(path)
    assert len(loaded.events) == len(timeline.events)
    assert set(loaded.telemetry) == set(timeline.telemetry)


def test_spans_disabled_run_produces_no_timeline():
    spec = _live_spec()
    spec.spans = False
    live = run_live_cluster(spec)
    assert live.order_ok, live.order_error
    assert live.timeline is None
    assert live.breakdown is None
    # Telemetry still rides in each node's record (cheap counters).
    for record in live.node_records.values():
        assert "telemetry" in record
        counters = record["telemetry"]["counters"]
        assert counters["transport_frames_sent"] >= 0
