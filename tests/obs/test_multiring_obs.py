"""Ring-tagged spans through the obs pipeline.

Satellite guarantee: multi-ring lifecycle spans carry their inner-ring
id end to end — through per-node journals, the cross-node merger's
rebase, and the per-ring breakdowns ``python -m repro obs`` renders.
"""

import pytest

from repro.core.fsr import FSRConfig
from repro.obs.analyze import ring_breakdowns, stage_breakdown
from repro.obs.journal import (
    SpanJournal,
    Timeline,
    merge_span_journals,
    timeline_from_spanlog,
)
from repro.obs.span import SpanEvent
from repro.protocols.multiring import MultiRingConfig
from tests.conftest import run_broadcasts, small_cluster


def _event(time, node, kind, origin, local, ring=None, sequence=None):
    return SpanEvent(
        time=time, node=node, kind=kind, origin=origin,
        local_seq=local, sequence=sequence, ring=ring,
    )


def test_merged_two_ring_timeline_keeps_ring_tags(tmp_path):
    # Two nodes journal spans of two rings with *different* start times,
    # so the merger must rebase — and rebasing must not drop the ring.
    paths = {}
    for node, start in ((0, 10.0), (1, 10.5)):
        path = str(tmp_path / f"node{node}.spans.jsonl")
        journal = SpanJournal(path, node=node, start_time=start)
        journal.write_span(_event(start + 0.001, node, "broadcast", node, 1,
                                  ring=node % 2))
        journal.write_span(_event(start + 0.002, node, "delivered", node, 1,
                                  ring=node % 2, sequence=node + 1))
        journal.close()
        paths[node] = path

    timeline = merge_span_journals(paths)
    assert timeline.rings() == [0, 1]
    assert all(e.ring is not None for e in timeline.events)
    # Rebase happened (node 0 started earliest) and kept every field.
    assert min(e.time for e in timeline.events) == pytest.approx(0.001)
    for ring in (0, 1):
        sub = timeline.for_ring(ring)
        assert {e.ring for e in sub.events} == {ring}
        assert sub.duration_s == timeline.duration_s
    # Round-trip through the merged-timeline artifact.
    out = str(tmp_path / "timeline.jsonl")
    timeline.write_jsonl(out)
    assert Timeline.load_jsonl(out).rings() == [0, 1]


def test_single_ring_timeline_has_no_rings():
    timeline = Timeline(events=[_event(0.0, 0, "broadcast", 0, 1)])
    assert timeline.rings() == []


def test_sim_multiring_spans_group_per_ring():
    cluster = small_cluster(
        n=4,
        protocol="multiring",
        protocol_config=MultiRingConfig(shards=2, fsr=FSRConfig(t=1)),
        seed=5,
        spans=True,
    )
    plan = [(pid, 4, 8_000) for pid in range(4)]
    result = run_broadcasts(cluster, plan)
    timeline = timeline_from_spanlog(result.spans)

    rings = timeline.rings()
    assert rings and set(rings) <= {0, 1}

    # The global breakdown tolerates noop fillers (traced, never
    # submitted) via strict_submissions=False.
    breakdown = stage_breakdown(
        timeline, broadcasts=result.broadcasts, strict_submissions=False
    )
    assert breakdown.messages > 0

    per_ring = ring_breakdowns(timeline, broadcasts=result.broadcasts)
    assert set(per_ring) <= set(rings)
    assert per_ring  # at least one ring completed real lifecycles
    assert sum(b.messages for b in per_ring.values()) <= breakdown.messages
    for ring, ring_breakdown in per_ring.items():
        assert ring_breakdown.messages > 0
        assert ring_breakdown.end_to_end.mean_s > 0.0
