"""Profiling hooks: lag sampler, CPU accountant, stack sampler.

The lag sampler runs on a real asyncio loop through the node's
AsyncioScheduler; the accountant's CPU/wall split is checked with a
sleep (wall advances, CPU barely) and a spin (both advance); the
sampling profiler must catch a busy loop inside the busy function.
"""

import asyncio
import time

from repro.live.scheduler import AsyncioScheduler
from repro.obs.profile import CpuAccountant, EventLoopLagSampler, SamplingProfiler
from repro.obs.telemetry import Telemetry


def test_lag_sampler_ticks_and_publishes_gauges():
    telemetry = Telemetry()

    async def scenario():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        sampler = EventLoopLagSampler(sched, telemetry, interval_s=0.02)
        sampler.start()
        await asyncio.sleep(0.15)
        sampler.stop()
        ticking = sampler.samples
        await asyncio.sleep(0.06)
        return ticking, sampler.samples

    ticking, after_stop = asyncio.run(scenario())
    assert ticking >= 3
    assert after_stop == ticking  # stop() really cancels the timer
    snapshot = telemetry.snapshot()
    assert "event_loop_lag_s" in snapshot["gauges"]
    assert "cpu_busy_fraction" in snapshot["gauges"]
    assert snapshot["histograms"]["event_loop_lag_s"]["count"] == ticking
    # An idle loop's scheduling lag is small; saturation would show here.
    assert snapshot["gauges"]["event_loop_lag_s"]["value"] < 0.05


def test_lag_sampler_sees_a_blocked_loop():
    telemetry = Telemetry()

    async def scenario():
        sched = AsyncioScheduler(asyncio.get_running_loop())
        sampler = EventLoopLagSampler(sched, telemetry, interval_s=0.01)
        sampler.start()
        await asyncio.sleep(0.02)
        time.sleep(0.1)  # block the loop: the next tick fires late
        await asyncio.sleep(0.02)
        sampler.stop()

    asyncio.run(scenario())
    worst = telemetry.snapshot()["histograms"]["event_loop_lag_s"]["max"]
    assert worst > 0.05


def test_cpu_accountant_separates_cpu_from_wall():
    acct = CpuAccountant()
    spin = acct.stage("spin")
    for _ in range(3):
        with spin:
            t0 = time.thread_time()
            while time.thread_time() - t0 < 0.01:
                pass
    with acct.stage("wait"):
        time.sleep(0.05)
    totals = acct.totals()
    assert totals["spin"]["count"] == 3
    assert totals["spin"]["cpu_s"] >= 0.02
    assert totals["wait"]["count"] == 1
    assert totals["wait"]["wall_s"] >= 0.04
    # Sleeping burns wall time, not CPU: the split is the whole point.
    assert totals["wait"]["cpu_s"] < totals["wait"]["wall_s"] / 2
    # stage() returns the same accumulating span object each time.
    assert acct.stage("spin") is spin


def test_cpu_accountant_publishes_stage_gauges():
    acct = CpuAccountant()
    with acct.stage("decode"):
        pass
    telemetry = Telemetry()
    acct.publish(telemetry)
    gauges = telemetry.snapshot()["gauges"]
    assert "cpu_stage_decode_s" in gauges
    assert "wall_stage_decode_s" in gauges
    assert gauges["stage_decode_count"]["value"] == 1.0


def _busy_marker_function(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(range(100))


def test_sampling_profiler_catches_the_busy_function(tmp_path):
    profiler = SamplingProfiler(interval_s=0.002)
    profiler.start()
    _busy_marker_function(time.perf_counter() + 0.25)
    profiler.stop()
    assert profiler.samples >= 10
    lines = profiler.collapsed()
    assert lines, "no stacks collected"
    joined = "\n".join(lines)
    assert "_busy_marker_function" in joined
    # Collapsed format: "frame;frame;... count" with leaf last.
    stack, count = lines[0].rsplit(" ", 1)
    assert int(count) >= 1 and ";" in stack

    out = tmp_path / "prof.collapsed.txt"
    written = profiler.write_collapsed(str(out))
    assert written == profiler.samples
    assert "_busy_marker_function" in out.read_text()


def test_sampling_profiler_stop_is_idempotent_and_restartable():
    profiler = SamplingProfiler(interval_s=0.005)
    profiler.start()
    profiler.start()  # second start is a no-op, not a second thread
    time.sleep(0.03)
    profiler.stop()
    profiler.stop()
    count = profiler.samples
    time.sleep(0.03)
    assert profiler.samples == count  # sampling really stopped
