"""Stage breakdown and its cross-checks against the metrics collector.

The load-bearing property: hop + sequencing + stability sum *exactly*
to end-to-end latency (shared span boundaries), and the breakdown
refuses to report when its submission timestamps drift from the
authoritative ``ExperimentResult.broadcasts`` source the latency
metrics use.
"""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.errors import CheckFailure
from repro.metrics import collect_metrics
from repro.obs.analyze import (
    STAGES,
    crosscheck_latency,
    link_utilization,
    recovery_outage_from_spans,
    stage_breakdown,
)
from repro.obs.journal import Timeline, timeline_from_spanlog
from repro.obs.span import SpanEvent, SpanLog
from repro.types import BroadcastRecord, MessageId
from repro.workloads import KToNPattern, run_workload


def _sim_outcome(n=4, t=1, senders=2, messages=6):
    cluster = build_cluster(ClusterConfig(
        n=n, protocol="fsr", protocol_config=FSRConfig(t=t), spans=True,
    ))
    pattern = KToNPattern(
        senders=tuple(range(senders)),
        messages_per_sender=messages,
        message_bytes=8_000,
    )
    return run_workload(cluster, pattern)


def test_stages_sum_exactly_to_end_to_end_and_match_collector():
    outcome = _sim_outcome()
    result = outcome.result
    metrics = collect_metrics(outcome)
    timeline = timeline_from_spanlog(result.spans)

    breakdown = stage_breakdown(timeline, broadcasts=result.broadcasts)
    assert breakdown.skipped == 0
    stage_sum = sum(breakdown.stages[name].mean_s for name in STAGES)
    assert stage_sum == pytest.approx(breakdown.end_to_end.mean_s, rel=1e-9)
    # In simulation both reports see the same instants: exact agreement.
    assert breakdown.end_to_end.mean_s == pytest.approx(
        metrics.mean_latency_s, rel=1e-9
    )
    crosscheck_latency(breakdown, metrics.mean_latency_s)
    for name in STAGES:
        assert 0.0 <= breakdown.stages[name].share <= 1.0
    assert sum(
        breakdown.stages[name].share for name in STAGES
    ) == pytest.approx(1.0, rel=1e-9)


def test_tampered_submission_time_raises_checkfailure():
    outcome = _sim_outcome(messages=3)
    result = outcome.result
    timeline = timeline_from_spanlog(result.spans)
    tampered = [
        BroadcastRecord(
            message_id=record.message_id,
            size_bytes=record.size_bytes,
            submit_time=record.submit_time - 1.0,  # a second of drift
        )
        for record in result.broadcasts
    ]
    with pytest.raises(CheckFailure, match="no longer share one source"):
        stage_breakdown(timeline, broadcasts=tampered)


def test_span_message_missing_from_broadcasts_raises_checkfailure():
    outcome = _sim_outcome(messages=3)
    result = outcome.result
    timeline = timeline_from_spanlog(result.spans)
    truncated = result.broadcasts[:-1]
    with pytest.raises(CheckFailure, match="broadcasts does not"):
        stage_breakdown(timeline, broadcasts=truncated)


def test_crosscheck_rejects_divergent_latency():
    outcome = _sim_outcome(messages=3)
    breakdown = stage_breakdown(timeline_from_spanlog(outcome.result.spans))
    with pytest.raises(CheckFailure, match="apart"):
        crosscheck_latency(breakdown, breakdown.end_to_end.mean_s * 2.0)


def test_empty_timeline_refuses_to_report():
    with pytest.raises(CheckFailure, match="full lifecycle"):
        stage_breakdown(Timeline())


def test_breakdown_dict_round_trip():
    from repro.obs.analyze import StageBreakdown

    breakdown = stage_breakdown(
        timeline_from_spanlog(_sim_outcome(messages=3).result.spans)
    )
    clone = StageBreakdown.from_dict(breakdown.to_dict())
    assert clone.messages == breakdown.messages
    assert clone.end_to_end.mean_s == breakdown.end_to_end.mean_s
    assert clone.render_table() == breakdown.render_table()


def test_link_utilization_reads_transport_telemetry():
    telemetry = {
        0: {
            "counters": {"transport_bytes_sent": 1_000_000,
                         "transport_tx_stalls": 2},
            "gauges": {"transport_queued_bytes": {"value": 0.0,
                                                  "high_water": 4096.0}},
        },
        1: {
            "counters": {"transport_bytes_sent": 2_000_000},
            "gauges": {},
        },
    }
    timeline = Timeline(
        events=[SpanEvent(1.0, 0, "broadcast", 0, 1)],
        telemetry=telemetry,
        duration_s=2.0,
    )
    links = link_utilization(timeline)
    assert [(l.node, l.successor) for l in links] == [(0, 1), (1, 0)]
    assert links[0].mbps == pytest.approx(1_000_000 * 8 / 2.0 / 1e6)
    assert links[0].tx_stalls == 2
    assert links[0].queue_hwm_bytes == 4096.0
    assert links[1].tx_stalls == 0


def test_recovery_outage_reads_survivor_gap_straddling_crash():
    def delivered(time, node, seq):
        return SpanEvent(time, node, "delivered", 0, seq, sequence=seq)

    events = [
        delivered(1.0, 0, 1), delivered(1.1, 0, 2), delivered(3.0, 0, 3),
        delivered(1.0, 1, 1), delivered(1.1, 1, 2), delivered(2.5, 1, 3),
    ]
    timeline = Timeline(events=events, duration_s=3.0)
    # Crash at t=2.0: node 0's gap is 3.0 - 1.1 = 1.9 s, node 1's 1.4 s.
    outage = recovery_outage_from_spans(timeline, [2.0], survivors=[0, 1])
    assert outage == pytest.approx(1900.0)
    # Only node 1 counted: the smaller gap.
    assert recovery_outage_from_spans(
        timeline, [2.0], survivors=[1]
    ) == pytest.approx(1400.0)
    # No crashes -> no outage to speak of.
    assert recovery_outage_from_spans(timeline, [], survivors=[0, 1]) is None
    # Crash after the last delivery: nothing straddles it.
    assert recovery_outage_from_spans(
        timeline, [5.0], survivors=[0, 1]
    ) is None
