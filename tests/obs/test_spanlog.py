"""SpanLog semantics: off-by-default, full lifecycles when on.

The emission discipline mirrors ``TraceLog``: every call site guards
with ``if spans.enabled:`` so a disabled log costs one attribute check
and zero allocations — verified here by a counting stub sink that must
never fire.  When enabled, a simulated cluster run must produce one
complete lifecycle per broadcast message.
"""

from collections import Counter

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.obs.span import KIND_RANK, SpanLog
from repro.types import MessageId
from repro.workloads import KToNPattern, run_workload


class _CountingSink:
    def __init__(self):
        self.calls = 0

    def __call__(self, event):
        self.calls += 1


def test_disabled_spanlog_records_nothing_and_never_calls_sinks():
    spans = SpanLog()  # disabled is the default
    sink = _CountingSink()
    spans.add_sink(sink)
    for i in range(100):
        spans.emit(float(i), 0, "broadcast", 0, i)
    assert not spans.enabled
    assert len(spans) == 0
    assert spans.records() == []
    assert sink.calls == 0


def test_capacity_zero_keeps_memory_flat_but_feeds_sinks():
    # Live nodes run this shape: journal sink on, in-memory list off.
    # A streamed event reached its destination, so nothing is "dropped".
    spans = SpanLog(enabled=True, capacity=0)
    sink = _CountingSink()
    spans.add_sink(sink)
    for i in range(10):
        spans.emit(float(i), 0, "broadcast", 0, i)
    assert len(spans) == 0
    assert spans.dropped == 0
    assert sink.calls == 10


def test_over_capacity_without_sink_reports_drop_count():
    # An over-capacity run with no journal must say how much it lost:
    # spans.dropped is surfaced in prometheus_snapshot / repro obs so a
    # truncated trace can never read as a complete one.
    spans = SpanLog(enabled=True, capacity=2)
    for i in range(5):
        spans.emit(float(i), 0, "broadcast", 0, i)
    assert len(spans) == 2
    assert spans.dropped == 3


def _run_sim(n=4, t=1, senders=2, messages=5):
    cluster = build_cluster(ClusterConfig(
        n=n, protocol="fsr", protocol_config=FSRConfig(t=t), spans=True,
    ))
    pattern = KToNPattern(
        senders=tuple(range(senders)),
        messages_per_sender=messages,
        message_bytes=8_000,
    )
    return run_workload(cluster, pattern).result


def test_sim_cluster_without_spans_flag_stays_silent():
    cluster = build_cluster(ClusterConfig(
        n=3, protocol="fsr", protocol_config=FSRConfig(t=1),
    ))
    pattern = KToNPattern(senders=(0,), messages_per_sender=3,
                          message_bytes=8_000)
    result = run_workload(cluster, pattern).result
    assert len(result.spans) == 0


def test_sim_run_produces_one_full_lifecycle_per_message():
    n, t, senders, messages = 4, 1, 2, 5
    result = _run_sim(n=n, t=t, senders=senders, messages=messages)
    spans = result.spans
    expected = {
        MessageId(origin, seq)
        for origin in range(senders)
        for seq in range(1, messages + 1)
    }
    assert set(spans.messages()) == expected

    for message in sorted(expected):
        events = spans.lifecycle(message)
        kinds = Counter(e.kind for e in events)
        assert events[0].kind == "broadcast", message
        assert events[0].node == message.origin
        assert kinds["broadcast"] == 1
        assert kinds["sequenced"] == 1, message
        assert kinds["stable"] == 1, message
        # Every correct process app-delivers every message.
        assert kinds["delivered"] == n, message
        # A non-leader origin p forwards through the n - p - 1 nodes
        # between it and the leader; the leader's own messages skip the
        # forward phase entirely.
        origin = message.origin
        expected_hops = 0 if origin == 0 else n - origin - 1
        assert kinds["fwd_hop"] == expected_hops, message
        # ``stored`` fires at backups the SeqData actually transits:
        # it circulates leader -> ... -> origin's predecessor, so only
        # backup positions strictly before the origin see it (all t of
        # them for the leader's own messages).  Backups it skips learn
        # payloads from the forward phase and stability from acks.
        expected_stored = t if origin == 0 else min(origin - 1, t)
        assert kinds["stored"] == expected_stored, message
        # Causal order: ranks never regress for same-time ties, and the
        # lifecycle starts at broadcast and ends delivered.
        assert events[-1].kind == "delivered"
        times = [e.time for e in events]
        assert times == sorted(times)

    # Sequence numbers are unique and dense across messages.
    sequences = sorted(
        e.sequence for e in spans.records(kind="sequenced")
    )
    assert sequences == list(range(1, senders * messages + 1))


def test_kind_rank_matches_declared_lifecycle_order():
    assert KIND_RANK["broadcast"] < KIND_RANK["fwd_hop"]
    assert KIND_RANK["fwd_hop"] < KIND_RANK["sequenced"]
    assert KIND_RANK["sequenced"] < KIND_RANK["stored"]
    assert KIND_RANK["stored"] < KIND_RANK["stable"]
    assert KIND_RANK["stable"] < KIND_RANK["delivered"]
