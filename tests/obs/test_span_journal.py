"""Span journal persistence: crash-surviving files and the merger.

Mirrors the chaos journal's loader contract
(``tests/live/test_journal_loading.py``): a SIGKILLed node's span file
must load up to the last intact line, and files that never got their
``span_meta`` header read as "node never started emitting", not as an
empty timeline.
"""

import json

from repro.obs.journal import (
    SpanJournal,
    Timeline,
    load_span_journal,
    merge_span_journals,
    timeline_from_spanlog,
)
from repro.obs.span import SpanEvent, SpanLog
from repro.types import MessageId


def _event(time, node, kind, origin=0, local_seq=1, **kw):
    return SpanEvent(
        time=time, node=node, kind=kind, origin=origin, local_seq=local_seq,
        **kw,
    )


def test_journal_round_trips_spans_and_telemetry(tmp_path):
    path = str(tmp_path / "node1.spans.jsonl")
    journal = SpanJournal(path, node=1, start_time=10.0)
    journal.write_span(_event(10.1, 1, "broadcast"))
    journal.write_span(_event(10.2, 1, "sequenced", sequence=1))
    journal.write_telemetry(11.0, {"counters": {"transport_bytes_sent": 7}})
    journal.close()

    loaded = load_span_journal(path)
    assert loaded is not None
    assert loaded["node"] == 1
    assert loaded["start_time"] == 10.0
    assert [e.kind for e in loaded["events"]] == ["broadcast", "sequenced"]
    assert loaded["events"][1].sequence == 1
    assert loaded["telemetry"][-1]["snapshot"]["counters"] == {
        "transport_bytes_sent": 7
    }


def test_journal_tolerates_torn_tail_from_sigkill(tmp_path):
    path = str(tmp_path / "node2.spans.jsonl")
    journal = SpanJournal(path, node=2, start_time=5.0)
    journal.write_span(_event(5.1, 2, "broadcast"))
    journal.write_span(_event(5.2, 2, "delivered", sequence=1))
    journal.close()
    # Simulate a SIGKILL mid-write: a final line cut short, no newline.
    with open(path, "a") as fh:
        fh.write('{"type": "span", "time": 5.3, "no')

    loaded = load_span_journal(path)
    assert loaded is not None
    assert [e.kind for e in loaded["events"]] == ["broadcast", "delivered"]


def test_journal_without_meta_header_is_rejected(tmp_path):
    path = str(tmp_path / "node3.spans.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps(_event(1.0, 3, "broadcast").to_dict()) + "\n")
    assert load_span_journal(path) is None


def test_missing_journal_is_rejected(tmp_path):
    assert load_span_journal(str(tmp_path / "absent.jsonl")) is None


def test_merger_rebases_onto_common_origin_and_sorts(tmp_path):
    # Two nodes whose clocks share an axis but started apart.
    paths = {}
    for node, start, offset in ((0, 100.0, 0.0), (1, 100.5, 0.0)):
        path = str(tmp_path / f"node{node}.spans.jsonl")
        journal = SpanJournal(path, node=node, start_time=start)
        kind = "broadcast" if node == 0 else "delivered"
        journal.write_span(_event(100.0 + node * 0.25, node, kind))
        journal.write_telemetry(
            101.0, {"counters": {"transport_bytes_sent": node}}
        )
        journal.close()
        paths[node] = path
    # A journal that never started contributes nothing but kills nobody.
    paths[2] = str(tmp_path / "never-started.jsonl")

    timeline = merge_span_journals(paths, t0=100.0)
    assert [e.node for e in timeline.events] == [0, 1]
    assert timeline.events[0].time == 0.0
    assert timeline.events[1].time == 0.25
    assert set(timeline.telemetry) == {0, 1}
    assert timeline.duration_s == 0.25


def test_timeline_file_round_trip(tmp_path):
    spans = SpanLog(enabled=True)
    spans.emit(0.0, 0, "broadcast", 0, 1)
    spans.emit(0.1, 0, "sequenced", 0, 1, sequence=1)
    spans.emit(0.2, 1, "delivered", 0, 1, sequence=1)
    timeline = timeline_from_spanlog(
        spans, telemetry={0: {"counters": {"transport_bytes_sent": 3}}}
    )
    path = str(tmp_path / "timeline.jsonl")
    timeline.write_jsonl(path)

    loaded = Timeline.load_jsonl(path)
    assert [e.kind for e in loaded.events] == [
        "broadcast", "sequenced", "delivered"
    ]
    assert loaded.telemetry[0]["counters"]["transport_bytes_sent"] == 3
    assert loaded.duration_s == timeline.duration_s
    assert loaded.messages() == [MessageId(0, 1)]
    assert [e.kind for e in loaded.lifecycle(MessageId(0, 1))] == [
        "broadcast", "sequenced", "delivered"
    ]


def test_journal_streams_request_events_via_request_sink(tmp_path):
    from repro.obs.reqtrace import CLIENT_NODE, RequestLog

    path = str(tmp_path / "node4.spans.jsonl")
    journal = SpanJournal(path, node=4, start_time=0.0)
    reqlog = RequestLog(enabled=True, capacity=0)  # live-node shape
    reqlog.add_sink(journal.request_sink())
    reqlog.emit(1.0, CLIENT_NODE, "send", "c1", 1)
    reqlog.emit(1.1, 4, "proposed", "c1", 1, origin=4, local_seq=9)
    journal.close()

    loaded = load_span_journal(path)
    assert [r.kind for r in loaded["requests"]] == ["send", "proposed"]
    assert loaded["requests"][1].message_id == MessageId(4, 9)
    assert reqlog.dropped == 0  # streamed, not dropped


def test_timeline_round_trip_multiring_requests_dropped_and_torn_tail(tmp_path):
    from repro.obs.reqtrace import CLIENT_NODE, RequestEvent

    # Multiring span events (ring-tagged) plus serve-layer request
    # events and a non-zero drop count — everything the serve stack
    # writes — must survive write_jsonl/load_jsonl, including a torn
    # final line from a launcher killed mid-write.
    timeline = Timeline(
        events=[
            _event(0.0, 0, "broadcast", ring=0),
            _event(0.1, 0, "sequenced", sequence=1, ring=0),
            _event(0.05, 1, "broadcast", origin=1, local_seq=2, ring=1),
            _event(0.3, 1, "delivered", sequence=1, ring=0),
        ],
        telemetry={0: {"counters": {"x": 1}}},
        duration_s=0.3,
        requests=[
            RequestEvent(0.01, CLIENT_NODE, "send", "c1", 1),
            RequestEvent(0.02, 0, "proposed", "c1", 1, origin=0, local_seq=1),
            RequestEvent(0.29, CLIENT_NODE, "acked", "c1", 1),
        ],
        dropped=7,
    )
    path = str(tmp_path / "timeline.jsonl")
    timeline.write_jsonl(path)
    with open(path, "a") as fh:
        fh.write('{"type": "req", "time": 0.4, "nod')  # torn tail

    loaded = Timeline.load_jsonl(path)
    assert loaded.rings() == [0, 1]
    assert [e.ring for e in loaded.for_ring(1).events] == [1]
    assert loaded.dropped == 7
    assert [r.kind for r in loaded.requests] == ["send", "proposed", "acked"]
    assert loaded.requests[1].message_id == MessageId(0, 1)
    assert loaded.request_keys() == [("c1", 1)]
    assert loaded.duration_s == timeline.duration_s


def test_merger_rebases_request_events_with_the_spans(tmp_path):
    from repro.obs.journal import rebase_request
    from repro.obs.reqtrace import CLIENT_NODE, RequestEvent

    path = str(tmp_path / "node0.spans.jsonl")
    journal = SpanJournal(path, node=0, start_time=50.0)
    journal.write_span(_event(50.2, 0, "broadcast"))
    journal.write_request(RequestEvent(50.1, 0, "recv", "c1", 1))
    journal.close()

    timeline = merge_span_journals({0: path}, t0=50.0)
    assert abs(timeline.requests[0].time - 0.1) < 1e-9
    # Client-side events collected in the launcher rebase with the same
    # t0 (CLOCK_MONOTONIC is system-wide), via the public helper.
    client_event = rebase_request(
        RequestEvent(50.05, CLIENT_NODE, "send", "c1", 1), 50.0
    )
    assert abs(client_event.time - 0.05) < 1e-9


def test_spans_dropped_surfaces_in_prometheus_snapshot():
    from repro.obs.analyze import prometheus_snapshot

    spans = SpanLog(enabled=True, capacity=1)
    for i in range(4):
        spans.emit(float(i), 0, "broadcast", 0, i + 1)
    timeline = timeline_from_spanlog(spans)
    assert timeline.dropped == 3
    text = prometheus_snapshot(timeline)
    assert "repro_spans_dropped 3" in text
