"""Telemetry registry: instruments, snapshots, Prometheus rendering."""

import pytest

from repro.obs.telemetry import Telemetry, render_prometheus


def test_counter_accumulates():
    telemetry = Telemetry()
    telemetry.counter("reconnects").inc()
    telemetry.counter("reconnects").inc(3)
    assert telemetry.counter("reconnects").value == 4


def test_gauge_tracks_high_water():
    telemetry = Telemetry()
    gauge = telemetry.gauge("queued_bytes")
    gauge.set(100.0)
    gauge.set(500.0)
    gauge.set(50.0)
    assert gauge.value == 50.0
    assert gauge.high_water == 500.0


def test_histogram_summary_uses_exact_percentiles():
    telemetry = Telemetry()
    hist = telemetry.histogram("rtt_s")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["sum"] == 10.0
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["mean"] == pytest.approx(2.5)
    assert 1.0 <= summary["p50"] <= 3.0
    assert summary["p99"] <= 4.0
    assert telemetry.histogram("empty").summary() == {"count": 0}


def test_snapshot_is_plain_json_shape():
    telemetry = Telemetry()
    telemetry.counter("frames").inc(7)
    telemetry.gauge("depth").set(3.0)
    telemetry.histogram("lat").observe(0.5)
    snap = telemetry.snapshot()
    assert snap["counters"] == {"frames": 7}
    assert snap["gauges"] == {"depth": {"value": 3.0, "high_water": 3.0}}
    assert snap["histograms"]["lat"]["count"] == 1


def test_render_prometheus_labels_nodes_and_types():
    telemetry = Telemetry()
    telemetry.counter("transport_reconnects").inc(2)
    telemetry.gauge("transport_queued_bytes").set(128.0)
    telemetry.histogram("heartbeat_rtt_s").observe(0.01)
    text = render_prometheus(
        {3: telemetry.snapshot()}, extra={"latency_stage_hop_share": 0.4}
    )
    assert '# TYPE repro_transport_reconnects_total counter' in text
    assert 'repro_transport_reconnects_total{node="3"} 2' in text
    assert 'repro_transport_queued_bytes{node="3"} 128.0' in text
    assert 'repro_transport_queued_bytes_high_water{node="3"} 128.0' in text
    assert 'repro_heartbeat_rtt_s_count{node="3"} 1' in text
    assert 'quantile="0.5"' in text
    assert "repro_latency_stage_hop_share 0.4" in text
    # Each metric name gets exactly one TYPE header.
    assert text.count("# TYPE repro_transport_reconnects_total") == 1
