"""Request-trace semantics: stage decomposition and the 5% cross-check.

The breakdown's defining property is arithmetic, not statistical: the
four stage boundaries are shared event timestamps, so queue +
replication + apply + respond must equal the ordered end-to-end value
*exactly* per request.  Retries fold by ``(client, seq)`` with the
first event of each kind winning — a failed-over request is measured
from its original submission, which is what the client observed.
"""

import pytest

from repro.errors import CheckFailure
from repro.obs.reqtrace import (
    CLIENT_NODE,
    REQUEST_STAGES,
    RequestBreakdown,
    RequestLog,
    crosscheck_request_latency,
    request_breakdown,
    requests_by_key,
)


def _ordered_request(log, client, seq, send, queue, repl, apply, respond):
    """Emit one complete ordered-path lifecycle with known stage widths."""
    t = send
    log.emit(t, CLIENT_NODE, "send", client, seq)
    log.emit(t + queue * 0.3, 0, "recv", client, seq)
    log.emit(t + queue * 0.6, 0, "enqueued", client, seq)
    t += queue
    log.emit(t, 0, "proposed", client, seq, origin=0, local_seq=seq)
    t += repl
    log.emit(t, 0, "ordered", client, seq, origin=0, local_seq=seq)
    t += apply
    log.emit(t, 0, "applied", client, seq)
    log.emit(t + respond * 0.5, 0, "responded", client, seq)
    t += respond
    log.emit(t, CLIENT_NODE, "acked", client, seq)


def test_stages_sum_exactly_to_ordered_end_to_end():
    log = RequestLog(enabled=True)
    widths = [
        (0.001, 0.004, 0.0002, 0.0008),
        (0.002, 0.008, 0.0001, 0.0009),
        (0.0005, 0.002, 0.0003, 0.0002),
    ]
    for i, (q, r, a, p) in enumerate(widths):
        _ordered_request(log, "c1", i + 1, send=float(i), queue=q,
                         repl=r, apply=a, respond=p)
    bd = request_breakdown(log.records())
    assert bd.requests == 3 and bd.total == 3 and bd.skipped == 0
    stage_sum = sum(bd.stages[name].mean_s for name in REQUEST_STAGES)
    assert stage_sum == pytest.approx(bd.end_to_end.mean_s, rel=1e-12)
    expected_mean = sum(sum(w) for w in widths) / len(widths)
    assert bd.end_to_end.mean_s == pytest.approx(expected_mean, rel=1e-9)
    # Shares are fractions of the mean end-to-end and sum to 1.
    assert sum(bd.stages[n].share for n in REQUEST_STAGES) == pytest.approx(1.0)


def test_local_path_requests_count_in_overall_but_not_stages():
    log = RequestLog(enabled=True)
    _ordered_request(log, "c1", 1, send=0.0, queue=0.001, repl=0.004,
                     apply=0.0002, respond=0.0008)
    # A local read: send/recv/local_read/responded/acked, no ordered leg.
    log.emit(10.0, CLIENT_NODE, "send", "c1", 2)
    log.emit(10.0004, 0, "recv", "c1", 2)
    log.emit(10.0005, 0, "local_read", "c1", 2)
    log.emit(10.0006, 0, "responded", "c1", 2)
    log.emit(10.001, CLIENT_NODE, "acked", "c1", 2)
    bd = request_breakdown(log.records())
    assert bd.requests == 1  # only the ordered one decomposes
    assert bd.total == 2     # both completed round trips
    assert bd.markers["local_read"] == 1
    # The overall mean covers both populations: (6ms + 1ms) / 2.
    assert bd.overall.mean_s == pytest.approx((0.006 + 0.001) / 2, rel=1e-9)


def test_retries_fold_to_first_event_per_kind():
    log = RequestLog(enabled=True)
    # Original attempt: send at t=0, proposed at the dead leader.
    log.emit(0.0, CLIENT_NODE, "send", "c1", 1)
    log.emit(0.001, 0, "recv", "c1", 1)
    log.emit(0.002, 0, "proposed", "c1", 1, origin=0, local_seq=7)
    # Failover resend: duplicate send/recv/proposed on the survivor.
    log.emit(0.5, CLIENT_NODE, "failover_resend", "c1", 1)
    log.emit(0.501, CLIENT_NODE, "send", "c1", 1)
    log.emit(0.502, 1, "recv", "c1", 1)
    log.emit(0.503, 1, "proposed", "c1", 1, origin=1, local_seq=3)
    log.emit(0.600, 1, "ordered", "c1", 1, origin=1, local_seq=3)
    log.emit(0.601, 1, "applied", "c1", 1)
    log.emit(0.650, CLIENT_NODE, "acked", "c1", 1)
    bd = request_breakdown(log.records())
    assert bd.requests == 1
    assert bd.markers["failover_resend"] == 1
    # Measured from the ORIGINAL send (t=0), not the resend (t=0.501).
    assert bd.end_to_end.mean_s == pytest.approx(0.650)
    # queue uses the first proposed stamp (t=0.002).
    assert bd.stages["queue"].mean_s == pytest.approx(0.002)


def test_ack_racing_ahead_of_ordered_duplicate_skips_stages():
    # A cached/local answer satisfied the client before a failover
    # duplicate finished riding the total order: the request counts in
    # the overall population but contributes no (negative) stage times.
    log = RequestLog(enabled=True)
    _ordered_request(log, "c1", 1, send=0.0, queue=0.001, repl=0.004,
                     apply=0.0002, respond=0.0008)
    log.emit(1.0, CLIENT_NODE, "send", "c1", 2)
    log.emit(1.001, 0, "proposed", "c1", 2, origin=0, local_seq=9)
    log.emit(1.002, CLIENT_NODE, "acked", "c1", 2)  # cached answer
    log.emit(1.050, 0, "ordered", "c1", 2, origin=0, local_seq=9)
    log.emit(1.051, 0, "applied", "c1", 2)          # after the ack
    bd = request_breakdown(log.records())
    assert bd.requests == 1 and bd.total == 2
    assert all(bd.stages[n].mean_s >= 0 for n in REQUEST_STAGES)


def test_incomplete_lifecycles_are_skipped_and_counted():
    log = RequestLog(enabled=True)
    _ordered_request(log, "c1", 1, send=0.0, queue=0.001, repl=0.004,
                     apply=0.0002, respond=0.0008)
    log.emit(5.0, CLIENT_NODE, "send", "c1", 2)  # in flight at shutdown
    bd = request_breakdown(log.records())
    assert bd.total == 1 and bd.skipped == 1


def test_breakdown_raises_without_any_complete_request():
    log = RequestLog(enabled=True)
    log.emit(0.0, CLIENT_NODE, "send", "c1", 1)
    with pytest.raises(CheckFailure):
        request_breakdown(log.records())


def test_breakdown_raises_without_any_ordered_path_request():
    log = RequestLog(enabled=True)
    log.emit(0.0, CLIENT_NODE, "send", "c1", 1)
    log.emit(0.001, 0, "local_read", "c1", 1)
    log.emit(0.002, CLIENT_NODE, "acked", "c1", 1)
    with pytest.raises(CheckFailure):
        request_breakdown(log.records())


def test_crosscheck_passes_within_and_fails_beyond_five_percent():
    log = RequestLog(enabled=True)
    _ordered_request(log, "c1", 1, send=0.0, queue=0.001, repl=0.004,
                     apply=0.0002, respond=0.0008)
    bd = request_breakdown(log.records())
    mean = bd.overall.mean_s
    crosscheck_request_latency(bd, mean * 1.04)  # inside the gate
    with pytest.raises(CheckFailure):
        crosscheck_request_latency(bd, mean * 1.10)


def test_roundtrip_through_dict_preserves_the_table():
    log = RequestLog(enabled=True)
    _ordered_request(log, "c1", 1, send=0.0, queue=0.001, repl=0.004,
                     apply=0.0002, respond=0.0008)
    bd = request_breakdown(log.records())
    again = RequestBreakdown.from_dict(bd.to_dict())
    assert again.render_table() == bd.render_table()
    assert "queue" in again.render_table()


def test_disabled_log_records_nothing_and_empty_log_is_still_usable():
    log = RequestLog()  # disabled by default
    log.emit(0.0, CLIENT_NODE, "send", "c1", 1)
    assert len(log) == 0 and log.records() == []
    # Regression guard: RequestLog has __len__, so an enabled-but-empty
    # log is falsy — call sites must test `is None`, never truthiness.
    enabled = RequestLog(enabled=True)
    assert not enabled and enabled.enabled


def test_capacity_and_sinks_mirror_spanlog_drop_semantics():
    streamed = []
    log = RequestLog(enabled=True, capacity=0)
    log.add_sink(streamed.append)
    for i in range(5):
        log.emit(float(i), CLIENT_NODE, "send", "c1", i + 1)
    assert len(log) == 0 and len(streamed) == 5
    assert log.dropped == 0  # every event reached the sink
    capped = RequestLog(enabled=True, capacity=2)
    for i in range(5):
        capped.emit(float(i), CLIENT_NODE, "send", "c1", i + 1)
    assert len(capped) == 2 and capped.dropped == 3


def test_requests_by_key_groups_and_orders_lifecycles():
    log = RequestLog(enabled=True)
    log.emit(0.002, 0, "recv", "c1", 1)
    log.emit(0.001, CLIENT_NODE, "send", "c1", 1)
    log.emit(0.005, CLIENT_NODE, "send", "c2", 1)
    grouped = requests_by_key(log.records())
    assert set(grouped) == {("c1", 1), ("c2", 1)}
    assert [e.kind for e in grouped[("c1", 1)]] == ["send", "recv"]
