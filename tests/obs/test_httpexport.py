"""The live metrics plane: MetricsServer and its scrape helpers.

The server is stdlib asyncio only (the container has no aiohttp), so
the tests exercise the actual HTTP surface over a real loopback socket:
content type, counter rendering, the health document, and the error
paths a misbehaving scraper hits.
"""

import asyncio

import pytest

from repro.obs.httpexport import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    fetch_metrics,
    http_get,
    prometheus_metric_names,
)
from repro.obs.telemetry import Telemetry


def _run(coro):
    return asyncio.run(coro)


def _server(health_fn=None):
    telemetry = Telemetry()
    telemetry.counter("serve_requests").inc(42)
    telemetry.gauge("event_loop_lag_s").set(0.003)
    server = MetricsServer(7, telemetry.snapshot, health_fn)
    return server, telemetry


def test_metrics_endpoint_serves_prometheus_text():
    async def scenario():
        server, _ = _server()
        await server.start("127.0.0.1", 0)
        assert server.port  # ephemeral port recorded after bind
        try:
            body = await fetch_metrics("127.0.0.1", server.port)
        finally:
            await server.close()
        return body

    body = _run(scenario())
    assert 'repro_serve_requests_total{node="7"} 42' in body
    assert "repro_event_loop_lag_s" in body
    assert "serve_requests_total" in {
        n.removeprefix("repro_") for n in prometheus_metric_names(body)
    }


def test_metrics_scrape_reflects_live_counter_increments():
    async def scenario():
        server, telemetry = _server()
        await server.start("127.0.0.1", 0)
        try:
            first = await fetch_metrics("127.0.0.1", server.port)
            telemetry.counter("serve_requests").inc(8)
            second = await fetch_metrics("127.0.0.1", server.port)
        finally:
            await server.close()
        return first, second

    first, second = _run(scenario())
    assert 'repro_serve_requests_total{node="7"} 42' in first
    assert 'repro_serve_requests_total{node="7"} 50' in second


def test_healthz_returns_the_role_document():
    async def scenario():
        server, _ = _server(health_fn=lambda: {
            "role": "leader", "view_id": 3, "lease_held": True,
            "applied_index": 17,
        })
        await server.start("127.0.0.1", 0)
        try:
            return await http_get("127.0.0.1", server.port, "/healthz")
        finally:
            await server.close()

    status, body = _run(scenario())
    assert status == 200
    import json

    health = json.loads(body)
    assert health["role"] == "leader"
    assert health["node"] == 7  # filled in by the server
    assert health["applied_index"] == 17


def test_content_type_and_unknown_paths_and_methods():
    async def scenario():
        server, _ = _server()
        await server.start("127.0.0.1", 0)
        results = {}
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            results["metrics_head"] = raw.partition(b"\r\n\r\n")[0].decode()

            results["missing"] = await http_get(
                "127.0.0.1", server.port, "/nope"
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            results["post"] = raw.split(b" ", 2)[1]
        finally:
            await server.close()
        return results

    results = _run(scenario())
    assert PROMETHEUS_CONTENT_TYPE in results["metrics_head"]
    assert "Connection: close" in results["metrics_head"]
    assert results["missing"][0] == 404
    assert results["post"] == b"405"


def test_snapshot_exception_yields_500_not_a_crash():
    def boom():
        raise RuntimeError("telemetry exploded")

    async def scenario():
        server = MetricsServer(0, boom)
        await server.start("127.0.0.1", 0)
        try:
            status, body = await http_get(
                "127.0.0.1", server.port, "/metrics"
            )
            # The server survived; a second scrape still answers.
            status2, _ = await http_get("127.0.0.1", server.port, "/metrics")
        finally:
            await server.close()
        return status, body, status2

    status, body, status2 = _run(scenario())
    assert status == 500 and "telemetry exploded" in body
    assert status2 == 500


def test_fetch_metrics_raises_on_non_200():
    async def scenario():
        server = MetricsServer(0, lambda: (_ for _ in ()).throw(RuntimeError()))
        await server.start("127.0.0.1", 0)
        try:
            with pytest.raises(OSError):
                await fetch_metrics("127.0.0.1", server.port)
        finally:
            await server.close()

    _run(scenario())


def test_prometheus_metric_names_filters_by_suffix():
    text = "\n".join([
        "# HELP repro_x_total x",
        "# TYPE repro_x_total counter",
        'repro_x_total{node="0"} 3',
        'repro_lag_s{node="0"} 0.001',
        "repro_free 7",
    ])
    assert prometheus_metric_names(text) == {"repro_x_total"}
    assert prometheus_metric_names(text, suffix="") == {
        "repro_x_total", "repro_lag_s", "repro_free",
    }
