"""Unit tests for the statistics helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import jain_index, mean, percentile, stddev


def test_mean_and_stddev():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stddev([2.0, 2.0, 2.0]) == 0.0
    assert stddev([0.0, 4.0]) == 2.0


def test_empty_inputs_raise():
    for fn in (mean, stddev, jain_index):
        with pytest.raises(ConfigurationError):
            fn([])
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_percentile_interpolation():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([7.0], 99) == 7.0


def test_percentile_bounds():
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)


def test_percentile_is_order_independent():
    assert percentile([3.0, 1.0, 2.0], 50) == 2.0


def test_jain_index_extremes():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    # One sender hogging everything: index -> 1/n.
    assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jain_index([0.0, 0.0]) == 1.0  # nobody sent: trivially fair


def test_jain_index_moderate_imbalance():
    balanced = jain_index([10.0, 10.0])
    skewed = jain_index([15.0, 5.0])
    assert skewed < balanced
