"""Tests for result export/import round-tripping."""

import pytest

from repro.checker import check_all
from repro.errors import ConfigurationError
from repro.metrics.export import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from tests.conftest import run_broadcasts, small_cluster


def _result():
    cluster = small_cluster(n=3)
    return run_broadcasts(cluster, [(0, 3, 2_000), (2, 3, 2_000)])


def test_round_trip_preserves_checker_view():
    original = _result()
    restored = result_from_json(result_to_json(original))
    check_all(restored)
    assert restored.duration_s == original.duration_s
    assert restored.correct_processes() == original.correct_processes()
    for pid in original.delivery_logs:
        assert [d.key() for d in restored.delivery_logs[pid].deliveries] == [
            d.key() for d in original.delivery_logs[pid].deliveries
        ]


def test_round_trip_preserves_metrics_inputs():
    original = _result()
    restored = result_from_dict(result_to_dict(original))
    mid = original.broadcasts[0].message_id
    assert restored.completion_time(mid) == original.completion_time(mid)
    assert restored.total_delivered_bytes() == original.total_delivered_bytes()
    assert restored.broadcast_origin == original.broadcast_origin


def test_crashes_survive_round_trip():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    for _ in range(4):
        cluster.broadcast(0, size_bytes=1_000)
    cluster.schedule_crash(2, time=0.01)
    cluster.run(until=0.05)
    restored = result_from_dict(result_to_dict(cluster.results()))
    assert restored.crashed == {2: 0.01}


def test_nic_stats_survive():
    original = _result()
    restored = result_from_dict(result_to_dict(original))
    assert restored.nic_stats[0].wire_bytes_tx == original.nic_stats[0].wire_bytes_tx


def test_json_is_plain_text():
    text = result_to_json(_result(), indent=2)
    assert text.startswith("{")
    assert "repro.result/1" in text


def test_unknown_schema_rejected():
    with pytest.raises(ConfigurationError):
        result_from_dict({"schema": "something/else"})
