"""Unit tests for the metrics collector."""

import pytest

from repro.metrics import collect_metrics, format_table, latency_of_message
from repro.workloads import KToNPattern, run_workload
from tests.conftest import small_cluster


def _outcome(n=3, per=4, size=5_000):
    cluster = small_cluster(n=n)
    return run_workload(cluster, KToNPattern.n_to_n(n, per, message_bytes=size))


def test_collect_metrics_end_to_end():
    outcome = _outcome()
    metrics = collect_metrics(outcome)
    assert metrics.messages_completed == 12
    assert metrics.aggregate_throughput_mbps > 0
    assert set(metrics.per_sender_throughput_mbps) == {0, 1, 2}
    assert metrics.mean_latency_s > 0
    assert metrics.p50_latency_s <= metrics.p99_latency_s
    assert metrics.fairness == pytest.approx(1.0)


def test_latency_of_message_positive_and_reasonable():
    outcome = _outcome()
    for sender, ids in outcome.sent.items():
        for message_id in ids:
            latency = latency_of_message(outcome, message_id)
            assert latency is not None
            assert 0 < latency < outcome.result.duration_s


def test_latency_of_unknown_message_raises():
    from repro.errors import ConfigurationError
    from repro.types import MessageId

    outcome = _outcome(n=2, per=1)
    with pytest.raises(ConfigurationError):
        latency_of_message(outcome, MessageId(origin=9, local_seq=9))


def test_metrics_as_row():
    outcome = _outcome(n=2, per=2)
    row = collect_metrics(outcome).as_row()
    assert len(row) == 4


def test_format_table_alignment():
    text = format_table(
        ["n", "Mb/s"], [[2, 79.123], [10, 79.456]], title="Figure 8"
    )
    lines = text.splitlines()
    assert lines[0] == "Figure 8"
    assert "79.12" in text and "79.46" in text
    # All data rows are equally wide.
    assert len(lines[2]) == len(lines[3])
