"""Tests for the ASCII timeline/utilisation renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.timeline import delivery_timeline, event_strip, utilisation_bars
from tests.conftest import run_broadcasts, small_cluster
from tests.checker.test_order import build_result


def test_delivery_timeline_renders_rows_per_process():
    cluster = small_cluster(n=3)
    result = run_broadcasts(cluster, [(0, 5, 2_000), (1, 5, 2_000)])
    text = delivery_timeline(result, width=32)
    lines = text.splitlines()
    assert len(lines) == 4  # header + 3 processes
    assert lines[1].startswith("p0")
    assert "|" in lines[1]
    # Every process delivered something: no all-blank rows.
    for line in lines[1:]:
        body = line.split("|")[1]
        assert any(ch != " " for ch in body)


def test_delivery_timeline_marks_crash():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    for _ in range(8):
        cluster.broadcast(1, size_bytes=2_000)
    cluster.schedule_crash(2, time=0.0062)  # mid-delivery
    cluster.run_until(
        lambda: all(
            len(cluster.nodes[p].app_deliveries) >= 8 for p in (0, 1)
        ),
        max_time_s=30,
    )
    text = delivery_timeline(cluster.results(), width=32)
    crashed_row = [l for l in text.splitlines() if l.startswith("p2")][0]
    assert "x" in crashed_row


def test_delivery_timeline_empty_logs():
    result = build_result({0: [], 1: []})
    assert delivery_timeline(result) == "(no deliveries)"


def test_delivery_timeline_rejects_tiny_width():
    result = build_result({0: [(0, 1, 1)], 1: [(0, 1, 1)]})
    with pytest.raises(ConfigurationError):
        delivery_timeline(result, width=4)


def test_utilisation_bars_show_percentages():
    cluster = small_cluster(n=3)
    result = run_broadcasts(cluster, [(0, 10, 50_000)])
    text = utilisation_bars(result, width=20)
    assert "tx " in text and "rx " in text and "cpu" in text
    assert "%" in text
    # Three nodes x three resources + header.
    assert len(text.splitlines()) == 1 + 9


def test_utilisation_reveals_sequencer_bottleneck():
    cluster = small_cluster(n=4, protocol="fixed_sequencer", protocol_config=None)
    result = run_broadcasts(cluster, [(pid, 6, 50_000) for pid in (1, 2, 3)])
    stats = result.nic_stats
    assert stats[0].tx_busy_s > 2 * stats[1].tx_busy_s  # visual basis


def test_event_strip():
    text = event_strip([(1.0, "crash p0"), (1.5, "view 1")], start=0.0, end=2.0,
                       width=40)
    assert text.count("^") >= 2 + 2  # markers + label lines
    assert "crash p0" in text and "view 1" in text
    with pytest.raises(ConfigurationError):
        event_strip([], start=1.0, end=1.0)
