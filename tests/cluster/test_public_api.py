"""The documented public API surface stays importable and coherent."""

import importlib

import pytest


def test_top_level_all_resolves():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", [
    "repro.sim", "repro.net", "repro.failure", "repro.vsc",
    "repro.core", "repro.core.fsr", "repro.protocols", "repro.rounds",
    "repro.workloads", "repro.metrics", "repro.checker", "repro.cluster",
    "repro.smr", "repro.analysis", "repro.cli",
])
def test_subpackage_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, (module_name, name)


def test_readme_quickstart_snippet_works():
    """The code block in README.md actually runs."""
    from repro import ClusterConfig, FSRConfig, build_cluster

    cluster = build_cluster(ClusterConfig(n=5, protocol="fsr",
                                          protocol_config=FSRConfig(t=1)))
    cluster.start()
    cluster.run(until=0.05)
    cluster.broadcast(3, payload=b"hello")
    cluster.broadcast(1, payload=b"world")
    cluster.run_until(lambda: cluster.all_correct_delivered(2))
    orders = {
        pid: [str(d.message_id) for d in log.deliveries]
        for pid, log in cluster.results().delivery_logs.items()
    }
    assert len(set(map(tuple, orders.values()))) == 1


def test_every_public_module_has_docstrings():
    """Public modules and classes carry documentation."""
    modules = [
        "repro.sim.engine", "repro.net.network", "repro.net.params",
        "repro.vsc.membership", "repro.core.fsr.process",
        "repro.core.fsr.recovery", "repro.core.batching",
        "repro.protocols.fixed_sequencer", "repro.rounds.engine",
        "repro.workloads.driver", "repro.metrics.collector",
        "repro.checker.order", "repro.cluster.harness", "repro.analysis",
        "repro.smr.machine",
    ]
    for module_name in modules:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for attr_name in dir(module):
            attr = getattr(module, attr_name)
            if (
                isinstance(attr, type)
                and attr.__module__ == module_name
                and not attr_name.startswith("_")
            ):
                assert attr.__doc__, f"{module_name}.{attr_name} lacks a docstring"
