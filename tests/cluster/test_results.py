"""Unit tests for result containers."""

from repro.cluster.results import AppDelivery, ExperimentResult
from repro.core.api import DeliveryLog
from repro.sim import TraceLog
from repro.types import BroadcastRecord, MessageId


def _result(app_deliveries, crashed=None):
    processes = sorted(app_deliveries)
    return ExperimentResult(
        config=None,
        duration_s=1.0,
        delivery_logs={p: DeliveryLog(process=p) for p in processes},
        app_deliveries=app_deliveries,
        broadcasts=[],
        broadcast_origin={},
        crashed=crashed or {},
        nic_stats={},
        trace=TraceLog(),
    )


def _delivery(process, origin, local, time):
    return AppDelivery(
        process=process,
        origin=origin,
        message_id=MessageId(origin=origin, local_seq=local),
        size_bytes=100,
        time=time,
    )


def test_completion_time_is_last_correct_delivery():
    mid = MessageId(origin=0, local_seq=1)
    result = _result({
        0: [_delivery(0, 0, 1, 0.1)],
        1: [_delivery(1, 0, 1, 0.3)],
        2: [_delivery(2, 0, 1, 0.2)],
    })
    assert result.completion_time(mid) == 0.3


def test_completion_time_ignores_crashed_stragglers():
    mid = MessageId(origin=0, local_seq=1)
    result = _result(
        {
            0: [_delivery(0, 0, 1, 0.1)],
            1: [_delivery(1, 0, 1, 0.2)],
            2: [],  # crashed before delivering
        },
        crashed={2: 0.05},
    )
    assert result.completion_time(mid) == 0.2


def test_completion_time_none_when_correct_process_missing_it():
    mid = MessageId(origin=0, local_seq=1)
    result = _result({
        0: [_delivery(0, 0, 1, 0.1)],
        1: [],
    })
    assert result.completion_time(mid) is None


def test_delivery_helpers():
    result = _result({
        0: [_delivery(0, 0, 1, 0.1), _delivery(0, 1, 1, 0.2)],
        1: [_delivery(1, 0, 1, 0.15)],
    })
    assert result.total_delivered_bytes() == 300
    times = result.app_delivery_times(MessageId(origin=0, local_seq=1))
    assert sorted(times) == [(0, 0.1), (1, 0.15)]


def test_delivery_log_helpers():
    log = DeliveryLog(process=3)
    log.record(MessageId(origin=1, local_seq=1), sequence=1, time=0.1, size_bytes=5)
    log.record(MessageId(origin=2, local_seq=1), sequence=2, time=0.2, size_bytes=5)
    assert len(log) == 2
    assert [m.origin for m in log.message_ids()] == [1, 2]
    assert log.deliveries[0].key() == (1, 1)
