"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_subcommand(capsys):
    assert main([
        "run", "--protocol", "fsr", "--n", "3", "--senders", "2",
        "--messages", "3", "--size", "5000",
    ]) == 0
    out = capsys.readouterr().out
    assert "throughput (Mb/s)" in out
    assert "fairness (Jain)" in out


def test_run_baseline_protocol(capsys):
    assert main([
        "run", "--protocol", "fixed_sequencer", "--n", "3", "--senders", "1",
        "--messages", "3", "--size", "5000",
    ]) == 0
    assert "fixed_sequencer" in capsys.readouterr().out


def test_latency_subcommand(capsys):
    assert main(["latency", "--max-n", "4", "--size", "20000"]) == 0
    out = capsys.readouterr().out
    assert "latency (ms)" in out
    # One row per n in 2..4.
    assert len([l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]) == 3


def test_rounds_subcommand(capsys):
    assert main(["rounds", "--n", "4", "--k", "2"]) == 0
    out = capsys.readouterr().out
    assert "msgs/round" in out
    assert "fsr" in out
    assert "formula check" in out


def test_predict_subcommand(capsys):
    assert main(["predict", "--n", "5"]) == 0
    out = capsys.readouterr().out
    assert "FSR maximum throughput" in out
    assert "94.1" in out  # raw goodput


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_seed_changes_nothing_semantically(capsys):
    main(["run", "--n", "3", "--senders", "1", "--messages", "2",
          "--size", "1000", "--seed", "7"])
    out = capsys.readouterr().out
    assert "throughput" in out
