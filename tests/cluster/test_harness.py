"""Unit tests for cluster assembly and operation."""

import pytest

from repro.cluster import ClusterConfig, build_cluster
from repro.errors import ConfigurationError, SimulationError
from tests.conftest import fast_params, small_cluster


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(n=0)
    with pytest.raises(ConfigurationError):
        ClusterConfig(detector="psychic")
    with pytest.raises(ConfigurationError):
        ClusterConfig(detection_delay_s=-1)


def test_broadcast_before_start_rejected():
    cluster = small_cluster(n=2)
    with pytest.raises(SimulationError):
        cluster.broadcast(0, size_bytes=10)


def test_start_is_idempotent():
    cluster = small_cluster(n=2)
    cluster.start()
    cluster.start()
    cluster.run()


def test_run_until_raises_on_liveness_failure():
    cluster = small_cluster(n=2)
    cluster.start()
    with pytest.raises(SimulationError):
        cluster.run_until(lambda: False, step_s=0.05, max_time_s=0.2)


def test_results_freeze_state():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    cluster.broadcast(0, size_bytes=100)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=10)
    result = cluster.results()
    assert result.duration_s == cluster.sim.now
    assert set(result.delivery_logs) == {0, 1, 2}
    assert len(result.broadcasts) == 1
    assert result.broadcast_origin[result.broadcasts[0].message_id] == 0
    assert result.crashed == {}
    assert result.correct_processes() == {0, 1, 2}


def test_crash_recorded_in_results():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    cluster.schedule_crash(2, time=0.01)
    cluster.run(until=0.05)
    result = cluster.results()
    assert 2 in result.crashed
    assert result.correct_processes() == {0, 1}


def test_heartbeat_detector_stack_builds():
    cluster = small_cluster(n=3, detector="heartbeat")
    cluster.start()
    cluster.run(until=0.05)
    for node in cluster.nodes.values():
        assert node.detector.suspected() == set()


def test_seed_reproducibility():
    def run_once(seed):
        cluster = small_cluster(n=3, seed=seed)
        cluster.start()
        cluster.run(until=5e-3)
        for pid in range(3):
            cluster.broadcast(pid, size_bytes=1000)
        cluster.run_until(lambda: cluster.all_correct_delivered(3), max_time_s=10)
        result = cluster.results()
        return [
            (str(d.message_id), d.sequence, d.time)
            for d in result.delivery_logs[0].deliveries
        ]

    assert run_once(5) == run_once(5)


def test_nic_stats_populated():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    cluster.broadcast(0, size_bytes=10_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=10)
    result = cluster.results()
    assert result.nic_stats[0].wire_bytes_tx > 10_000
