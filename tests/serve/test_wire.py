"""Tests for the serve wire protocol (length-prefixed JSON frames)."""

import asyncio
import json
import struct

import pytest

from repro.errors import CodecError
from repro.serve.wire import (
    LENGTH_PREFIX_BYTES,
    MAX_FRAME_BYTES,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
    frame_length,
    read_frame,
)


def _strip(frame: bytes) -> bytes:
    assert frame_length(frame) == len(frame) - LENGTH_PREFIX_BYTES
    return frame[LENGTH_PREFIX_BYTES:]


def test_request_round_trip():
    request = Request(
        client="alice", seq=3, first_unacked=2, barrier=2,
        op="put", args=("k", "v"), ordered=True,
    )
    assert decode_request(_strip(encode_request(request))) == request


def test_response_round_trip():
    response = Response(
        seq=3, ok=True, result=[1, "x"], served="local", leader=0, view_id=2,
    )
    assert decode_response(_strip(encode_response(response))) == response
    error = Response(seq=4, ok=False, error="boom", served="cached")
    assert decode_response(_strip(encode_response(error))) == error


@pytest.mark.parametrize("mutate", [
    lambda d: d.pop("client"),
    lambda d: d.pop("seq"),
    lambda d: d.update(client=""),
    lambda d: d.update(client=7),
    lambda d: d.update(seq=0),
    lambda d: d.update(seq=True),
    lambda d: d.update(seq="3"),
    lambda d: d.update(first_unacked=-1),
    lambda d: d.update(barrier=None),
    lambda d: d.update(op=9),
    lambda d: d.update(args="not-a-list"),
    lambda d: d.update(ordered="yes"),
])
def test_malformed_request_bodies_rejected(mutate):
    body = Request(
        client="c", seq=1, first_unacked=1, barrier=0, op="get", args=("k",)
    ).to_dict()
    mutate(body)
    with pytest.raises(CodecError):
        decode_request(json.dumps(body).encode())


def test_non_dict_and_non_json_bodies_rejected():
    with pytest.raises(CodecError):
        decode_request(b"[1, 2]")
    with pytest.raises(CodecError):
        decode_request(b"\xff\xfe")
    with pytest.raises(CodecError):
        decode_response(b"null")


def test_unencodable_and_oversized_frames_rejected():
    with pytest.raises(CodecError):
        encode_frame({"x": object()})
    with pytest.raises(CodecError):
        encode_frame({"x": "y" * (MAX_FRAME_BYTES + 1)})


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_read_frame_streams_frames_and_handles_eof():
    async def scenario():
        frame_a = encode_frame({"a": 1})
        frame_b = encode_frame({"b": 2})
        reader = _reader_with(frame_a + frame_b)
        assert json.loads(await read_frame(reader)) == {"a": 1}
        assert json.loads(await read_frame(reader)) == {"b": 2}
        assert await read_frame(reader) is None  # clean EOF

    asyncio.run(scenario())


def test_read_frame_rejects_truncation_and_oversize():
    async def scenario():
        # Truncated mid-frame: the prefix promises more than arrives.
        frame = encode_frame({"a": 1})
        reader = _reader_with(frame[:-2])
        with pytest.raises(CodecError):
            await read_frame(reader)
        # Oversized length prefix: refused before buffering the body.
        reader = _reader_with(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(CodecError):
            await read_frame(reader)

    asyncio.run(scenario())
