"""In-process server/client loopback tests.

A single :class:`SessionServer` over a fake single-replica "total
order" (submit applies immediately) exercises the full asyncio request
path — wire codec, dispatch, dedup cache, lease/barrier gating, the
pipelining client — without spawning a live cluster.
"""

import asyncio

import pytest

from repro.errors import NetworkError
from repro.live.scheduler import AsyncioScheduler
from repro.serve.client import SessionClient
from repro.serve.lease import LeaderLease
from repro.serve.server import SessionServer
from repro.serve.session import SessionMachine
from repro.serve.wire import Request
from repro.smr.kvstore import KVStore
from repro.types import View


class InstantRSM:
    """Single-replica stand-in: submit == apply, in submission order."""

    def __init__(self, machine: SessionMachine) -> None:
        self.machine = machine
        self.fail = False

    def submit(self, command) -> None:
        if self.fail:
            raise NetworkError("broadcast rejected (view change in progress)")
        self.machine.apply(command)


class _Harness:
    def __init__(self) -> None:
        loop = asyncio.get_running_loop()
        self.machine = SessionMachine(KVStore())
        self.rsm = InstantRSM(self.machine)
        self.sched = AsyncioScheduler(loop)
        self.lease = LeaderLease(self.sched, node_id=0, lease_s=30.0)
        self.server = SessionServer(
            0, self.rsm, self.machine, self.lease, self.sched
        )

    async def start(self) -> "tuple[str, int]":
        await self.server.start("127.0.0.1", 0)
        self.server.on_view(View(view_id=0, members=(0,)))
        # The bootstrap renewal applies instantly through InstantRSM.
        await asyncio.sleep(0)
        return self.server._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        await self.server.close()


@pytest.fixture
def loopback():
    async def runner(scenario):
        harness = _Harness()
        address = await harness.start()
        client = SessionClient("c1", [address], retry_timeout_s=5.0)
        await client.connect()
        try:
            await scenario(harness, client)
        finally:
            await client.close()
            await harness.stop()

    return lambda scenario: asyncio.run(runner(scenario))


def test_writes_reads_and_errors_round_trip(loopback):
    async def scenario(harness, client):
        put = await client.request("put", "k", "v1")
        assert put.ok and put.served == "ordered"
        get = await client.request("get", "k")
        assert get.ok and get.result == "v1"
        assert get.served == "local"  # leaseholder, barrier satisfied
        assert client.local_reads == 1
        bad = await client.request("incr", "k", 1)
        assert not bad.ok and bad.served == "ordered"
        assert "incr" in bad.error
        assert client.errors == 1
        # Mutations acked in order; reads and errors tracked apart.
        assert [w[:2] for w in client.acked_writes] == [(1, "put")]

    loopback(scenario)


def test_duplicate_of_acked_write_served_from_cache(loopback):
    async def scenario(harness, client):
        first = await client.request("incr", "ctr", 5)
        assert first.ok and first.result == 5
        dup = await client.duplicate(1, "incr", "ctr", 5)
        assert dup.ok and dup.result == 5
        assert dup.served == "cached"
        assert client.cached_responses == 1
        # The inner machine executed once: no double increment.
        assert harness.machine.inner.snapshot() == {"ctr": 5}
        assert harness.server.stats()["cached"] == 1
        assert harness.machine.session_applies == 1

    loopback(scenario)


def test_ordered_flag_bypasses_the_local_read_path(loopback):
    async def scenario(harness, client):
        await client.request("put", "k", "v")
        read = await client.request("get", "k", ordered=True)
        assert read.ok and read.served == "ordered"
        assert harness.server.stats()["local_reads"] == 0

    loopback(scenario)


def test_reads_fall_back_to_ordered_without_the_lease(loopback):
    async def scenario(harness, client):
        await client.request("put", "k", "v")
        # Another node takes over leadership: the lease drops instantly.
        harness.server.on_view(View(view_id=1, members=(1, 0)))
        read = await client.request("get", "k")
        assert read.ok and read.result == "v"
        assert read.served == "ordered"
        assert harness.server.stats()["lease_rejects"] >= 1
        assert read.leader == 1  # failover hint

    loopback(scenario)


def test_stale_barrier_forces_ordered_read(loopback):
    async def scenario(harness, client):
        await client.request("put", "k", "v")
        # Simulate a replica lagging this client's acked writes: the
        # client's barrier (1) is ahead of what the session table shows.
        harness.machine.sessions["c1"].floor = 0
        harness.machine.sessions["c1"].results.clear()
        read = await client.request("get", "k")
        assert read.served == "ordered"
        assert harness.server.stats()["barrier_rejects"] == 1

    loopback(scenario)


def test_unavailable_submit_triggers_client_retry(loopback):
    async def scenario(harness, client):
        await client.request("put", "k", "v")
        # Next ordered submit is rejected (view change in progress);
        # the server answers "unavailable" and the client re-pends,
        # fails over (same address), and retries to success.
        harness.rsm.fail = True
        fut = client.submit("put", "k", "v2")
        await asyncio.sleep(0.15)
        assert not fut.done()
        harness.rsm.fail = False
        await client.resend()
        response = await asyncio.wait_for(fut, 5.0)
        assert response.ok
        assert client.reconnects >= 1
        assert harness.machine.inner.snapshot() == {"k": "v2"}

    loopback(scenario)


def test_pipelined_requests_one_connection(loopback):
    async def scenario(harness, client):
        futures = [client.submit("incr", "ctr", 1) for _ in range(10)]
        responses = await asyncio.gather(*futures)
        assert all(r.ok for r in responses)
        assert sorted(r.result for r in responses) == list(range(1, 11))
        assert harness.machine.inner.snapshot() == {"ctr": 10}

    loopback(scenario)


def test_dispatch_rejects_mutating_local_read_attempts():
    # Defense in depth: even if a request claimed a mutating op were
    # read-only, the machine's local_read refuses to execute it.
    async def scenario():
        harness = _Harness()
        await harness.start()
        try:
            request = Request(
                client="c", seq=1, first_unacked=1, barrier=0,
                op="put", args=("k", "v"),
            )
            response = await harness.server._dispatch(request)
            assert response.served == "ordered"  # never the local path
        finally:
            await harness.stop()

    asyncio.run(scenario())
