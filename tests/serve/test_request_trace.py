"""End-to-end request tracing through the serve stack.

Reuses the loopback harness shape of ``test_server_loopback.py``: one
SessionServer over an instant single-replica RSM, a real TCP client,
and a shared RequestLog on both sides — the same topology the live
runner wires up, minus the processes.  InstantRSM's ``submit`` returns
``None`` (apply-on-submit), so the ordered/applied stamps are also
exercised with a message-id-returning RSM to cover ``note_ordered``.
"""

import asyncio

from repro.errors import NetworkError
from repro.live.scheduler import AsyncioScheduler
from repro.obs.reqtrace import CLIENT_NODE, RequestLog, requests_by_key
from repro.serve.client import SessionClient
from repro.serve.lease import LeaderLease
from repro.serve.server import SessionServer
from repro.serve.session import SessionMachine, session_command
from repro.serve.wire import Request, decode_request, encode_request
from repro.smr.kvstore import KVStore
from repro.types import MessageId, View


class InstantRSM:
    """Single-replica stand-in: submit == apply, in submission order."""

    def __init__(self, machine: SessionMachine) -> None:
        self.machine = machine
        self.fail = False

    def submit(self, command) -> None:
        if self.fail:
            raise NetworkError("broadcast rejected")
        self.machine.apply(command)


class MessageIdRSM(InstantRSM):
    """Next-tick RSM that hands back broadcast MessageIds like a real one.

    Delivery is deferred to the next loop iteration (as on a live node,
    where the ring round-trip is asynchronous), so the server has
    registered the proposal before its delivery hook stamps ``ordered``.
    """

    def __init__(self, machine: SessionMachine, server_box: list) -> None:
        super().__init__(machine)
        self._seq = 0
        self._box = server_box  # filled with the server after construction

    def submit(self, command) -> MessageId:
        self._seq += 1
        message_id = MessageId(origin=0, local_seq=self._seq)

        def deliver() -> None:
            server = self._box[0] if self._box else None
            if server is not None:
                server.note_ordered(message_id)
            self.machine.apply(command)

        asyncio.get_running_loop().call_soon(deliver)
        return message_id


def _loopback(scenario, rsm_cls=InstantRSM, trace=True):
    async def runner():
        loop = asyncio.get_running_loop()
        reqlog = RequestLog(enabled=trace)
        machine = SessionMachine(KVStore())
        box: list = []
        rsm = rsm_cls(machine, box) if rsm_cls is MessageIdRSM else rsm_cls(machine)
        sched = AsyncioScheduler(loop)
        lease = LeaderLease(sched, node_id=0, lease_s=30.0)
        server = SessionServer(
            0, rsm, machine, lease, sched, reqlog=reqlog
        )
        box.append(server)
        await server.start("127.0.0.1", 0)
        server.on_view(View(view_id=0, members=(0,)))
        await asyncio.sleep(0)
        address = server._server.sockets[0].getsockname()[:2]
        client = SessionClient(
            "c1", [address], retry_timeout_s=5.0, reqlog=reqlog
        )
        await client.connect()
        try:
            await scenario(server, client, machine)
        finally:
            await client.close()
            await server.close()
        return reqlog.records()

    return asyncio.run(runner())


def test_ordered_write_emits_the_full_server_lifecycle():
    async def scenario(server, client, machine):
        response = await client.request("put", "k", "v")
        assert response.ok and response.served == "ordered"

    events = _loopback(scenario, rsm_cls=MessageIdRSM)
    lifecycle = requests_by_key(events)[("c1", 1)]
    kinds = [e.kind for e in lifecycle]
    assert kinds == [
        "send", "recv", "enqueued", "proposed", "ordered", "applied",
        "responded", "acked",
    ]
    # Client stamps carry the client pseudo-node; server stamps node 0.
    assert lifecycle[0].node == CLIENT_NODE and lifecycle[-1].node == CLIENT_NODE
    assert all(e.node == 0 for e in lifecycle[1:-1])
    # ``proposed``/``ordered`` carry the broadcast MessageId join key
    # (exact local_seq depends on how many lease renewals went first).
    assert lifecycle[3].message_id is not None
    assert lifecycle[3].message_id == lifecycle[4].message_id
    times = [e.time for e in lifecycle]
    assert times == sorted(times)


def test_apply_on_submit_rsm_still_traces_without_a_message_id():
    # InstantRSM.submit returns None (like test harnesses): the trace
    # must degrade to send/recv/enqueued/proposed/responded/acked, not
    # crash on the missing join key.
    async def scenario(server, client, machine):
        await client.request("put", "k", "v")

    events = _loopback(scenario, rsm_cls=InstantRSM)
    kinds = [e.kind for e in requests_by_key(events)[("c1", 1)]]
    assert "proposed" in kinds and "responded" in kinds
    assert "ordered" not in kinds  # no delivery hook in this harness
    proposed = next(e for e in events if e.kind == "proposed")
    assert proposed.message_id is None


def test_local_read_and_cached_and_fallback_markers():
    async def scenario(server, client, machine):
        await client.request("put", "k", "v")
        read = await client.request("get", "k")
        assert read.served == "local"
        dup = await client.duplicate(1, "put", "k", "v")
        assert dup.served == "cached"
        # Drop the lease: the next read falls back to the ordered path.
        server.on_view(View(view_id=1, members=(1, 0)))
        fallback = await client.request("get", "k")
        assert fallback.served == "ordered"

    events = _loopback(scenario, rsm_cls=InstantRSM)
    kinds = [e.kind for e in events]
    assert kinds.count("local_read") == 1
    assert kinds.count("cached") == 1
    assert kinds.count("ordered_fallback") == 1


def test_untraced_run_emits_nothing_server_side():
    async def scenario(server, client, machine):
        await client.request("put", "k", "v")
        await client.request("get", "k")

    events = _loopback(scenario, rsm_cls=InstantRSM, trace=False)
    assert events == []


def test_trace_flag_rides_the_wire_only_when_set():
    plain = Request(client="c", seq=1, first_unacked=1, barrier=0,
                    op="get", args=("k",))
    traced = Request(client="c", seq=1, first_unacked=1, barrier=0,
                     op="get", args=("k",), trace=True)
    assert b'"trace"' not in encode_request(plain)  # byte-identical wire
    assert b'"trace":true' in encode_request(traced)
    assert decode_request(encode_request(traced)[4:]).trace is True
    assert decode_request(encode_request(plain)[4:]).trace is False


def test_session_envelope_trace_flag_and_callback_semantics():
    machine = SessionMachine(KVStore())
    traced_applies = []
    machine.on_traced_apply(
        lambda client, seq, index: traced_applies.append((client, seq, index))
    )
    # Old 5-element envelope still applies (mixed-version replicas).
    old = session_command("c1", 1, 1, "put", ("k", "v1"))
    assert len(old.args) == 5
    assert machine.apply(old) == ("ok", None)
    assert traced_applies == []
    # Traced 6-element envelope fires the callback on FIRST application.
    new = session_command("c1", 2, 1, "put", ("k", "v2"), trace=True)
    assert len(new.args) == 6 and new.args[5] is True
    machine.apply(new)
    assert traced_applies == [("c1", 2, 2)]
    # A duplicate delivery dedups and must NOT re-fire the callback.
    machine.apply(new)
    assert traced_applies == [("c1", 2, 2)]
    assert machine.session_applies == 2 and machine.dedup_hits == 1
    # The flag never reaches the replicated state: snapshots agree with
    # an untraced twin that applied the same logical command sequence
    # (duplicate included — dedup hits advance the applied cursor too).
    twin = SessionMachine(KVStore())
    twin.apply(session_command("c1", 1, 1, "put", ("k", "v1")))
    twin.apply(session_command("c1", 2, 1, "put", ("k", "v2")))
    twin.apply(session_command("c1", 2, 1, "put", ("k", "v2")))
    assert twin.snapshot() == machine.snapshot()


def test_note_ordered_is_a_noop_for_untracked_message_ids():
    machine = SessionMachine(KVStore())
    sched_box: list = []

    async def scenario():
        loop = asyncio.get_running_loop()
        sched = AsyncioScheduler(loop)
        lease = LeaderLease(sched, node_id=0, lease_s=30.0)
        server = SessionServer(
            0, InstantRSM(machine), machine, lease, sched,
            reqlog=RequestLog(enabled=True),
        )
        # Deliveries of other nodes' proposals (or lease renewals) reach
        # the hook too; unknown ids must not emit or corrupt state.
        server.note_ordered(MessageId(3, 9))
        assert len(server.reqlog) == 0
        await server.close()

    asyncio.run(scenario())
