"""Simulator-side conformance: the session layer on the sim cluster.

The live half (``test_live_serve.py``) replays the same
``CONFORMANCE_SCRIPT`` through real TCP servers and asserts the
applied-command sequence matches what these tests pin down.
"""

from repro.serve.sim import (
    CONFORMANCE_SCRIPT,
    expected_applied,
    run_scripted_session,
)


def test_scripted_session_applies_identically_on_all_nodes():
    run = run_scripted_session()
    reference = run.applied[0]
    assert reference == expected_applied(CONFORMANCE_SCRIPT)
    for node_id, applied in run.applied.items():
        assert applied == reference, f"node {node_id} diverged"
    # The two scripted duplicates dedup on every replica.
    assert all(hits == 2 for hits in run.dedup_hits.values())


def test_scripted_session_states_converge():
    run = run_scripted_session()
    reference = run.snapshots[0]
    assert all(snap == reference for snap in run.snapshots.values())
    # Spot-check the semantics: the duplicate incr applied once.
    assert reference["inner"] == {"ctr": 5, "y": "10"}
    alice = reference["sessions"]["alice"]
    # The script's first_unacked cursor acked seqs 1-3, pruning their
    # cached results (the seq-3 error answered both its copies first —
    # see the dedup_hits assertion above).
    assert alice["floor"] == 3
    assert set(alice["results"]) == {"4"}


def test_scripted_session_is_deterministic():
    first = run_scripted_session()
    second = run_scripted_session()
    assert first.applied == second.applied
    assert first.snapshots == second.snapshots
    assert first.dedup_hits == second.dedup_hits


def test_script_survives_larger_cluster_and_backup_count():
    run = run_scripted_session(n=5, t=2)
    assert len(run.applied) == 5
    assert all(
        applied == run.applied[0] for applied in run.applied.values()
    )
