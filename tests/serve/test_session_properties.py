"""Property tests for the replicated session dedup table.

The exactly-once contract (DESIGN.md §5h): for *any* interleaving of
retries, reorders and duplicates of a client's requests, every request
executes against the inner machine exactly once, and every re-sent
already-acknowledged request is answered from the response cache with
the outcome of its first execution — including deterministic errors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import ProtocolError
from repro.serve.session import (
    ERROR,
    OK,
    SessionMachine,
    SessionState,
    lease_command,
    session_command,
)
from repro.smr.kvstore import KVStore
from repro.smr.machine import Command

# One logical request: (op, args) over a tiny key space.  ``bogus`` and
# ``incr`` on a string key are deterministic errors; they must dedup
# exactly like successes.
_OPS = st.sampled_from([
    ("put", ("a", 1)),
    ("put", ("b", "text")),
    ("incr", ("a", 2)),
    ("incr", ("b", 1)),  # ProtocolError once "b" holds text
    ("get", ("a",)),
    ("delete", ("a",)),
    ("cas", ("a", 1, 2)),
    ("bogus", ("a",)),   # always a ProtocolError
])


@st.composite
def delivery_schedules(draw):
    """A per-client request list plus an adversarial delivery order.

    Every request is delivered at least once; duplicates are injected
    and the whole stream is shuffled arbitrarily (cross-client reorder
    is unrestricted; same-client reorder models failover interleaving).
    """
    clients = draw(st.lists(
        st.sampled_from(["alice", "bob", "carol"]),
        min_size=1, max_size=3, unique=True,
    ))
    requests = []
    for client in clients:
        ops = draw(st.lists(_OPS, min_size=1, max_size=6))
        for seq, op_args in enumerate(ops, start=1):
            # first_unacked=1: the client never acks, so nothing is
            # pruned and any duplicate may arrive at any time.
            requests.append((client, seq, 1, *op_args))
    duplicates = draw(st.lists(
        st.sampled_from(requests), min_size=0, max_size=8,
    ))
    schedule = requests + duplicates
    permutation = draw(st.permutations(schedule))
    return requests, permutation


@given(delivery_schedules())
@settings(max_examples=120, deadline=None)
def test_any_interleaving_applies_each_request_exactly_once(schedule):
    requests, deliveries = schedule
    machine = SessionMachine(KVStore())
    first_applies = []
    machine.on_session_apply(
        lambda client, seq, op, args, outcome, index:
            first_applies.append((client, seq))
    )
    outcomes = {}
    for client, seq, first_unacked, op, args in deliveries:
        outcome = machine.apply(session_command(client, seq, first_unacked, op, args))
        key = (client, seq)
        if key in outcomes:
            # A duplicate must see the first execution's exact outcome.
            assert outcomes[key] == outcome
        else:
            outcomes[key] = outcome

    distinct = {(client, seq) for client, seq, *_ in requests}
    # Exactly one first-application per distinct request, no more.
    assert sorted(first_applies) == sorted(distinct)
    assert machine.session_applies == len(distinct)
    assert machine.dedup_hits == len(deliveries) - len(distinct)
    # Every outcome is a tagged status the server can serve from cache.
    assert all(status in (OK, ERROR) for status, _ in outcomes.values())


@given(delivery_schedules())
@settings(max_examples=60, deadline=None)
def test_replicas_converge_under_different_interleavings(schedule):
    """Duplicates are invisible to state: a replica that sees the
    adversarial stream (duplicates everywhere) ends with the same inner
    state and session table as one that saw only the first deliveries
    in the same relative order."""
    requests, deliveries = schedule
    machine_a = SessionMachine(KVStore())
    machine_b = SessionMachine(KVStore())
    firsts = []
    seen = set()
    for delivery in deliveries:
        key = delivery[:2]
        if key not in seen:
            seen.add(key)
            firsts.append(delivery)
    # Replica A applies the adversarial stream; replica B only the
    # first deliveries, in the same relative order.
    for client, seq, first_unacked, op, args in deliveries:
        machine_a.apply(session_command(client, seq, first_unacked, op, args))
    for client, seq, first_unacked, op, args in firsts:
        machine_b.apply(session_command(client, seq, first_unacked, op, args))
    snap_a = machine_a.snapshot()
    snap_b = machine_b.snapshot()
    # Duplicates bump applied_index (every ordered command does) but
    # must not change inner state or cached outcomes.
    assert snap_a["inner"] == snap_b["inner"]
    assert snap_a["sessions"] == snap_b["sessions"]


@given(
    st.lists(_OPS, min_size=1, max_size=8),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_pruning_never_drops_a_retryable_response(ops, data):
    """With an honestly advancing ``first_unacked`` cursor, any seq the
    client may still retry (>= first_unacked) stays answerable from the
    cache, and the cache never grows past the unacked window."""
    machine = SessionMachine(KVStore())
    acked = 0
    for seq, (op, args) in enumerate(ops, start=1):
        first_unacked = acked + 1
        outcome = machine.apply(
            session_command("c", seq, first_unacked, op, args)
        )
        # Retry of anything not yet acked: cached, not re-executed.
        retry_seq = data.draw(
            st.integers(min_value=first_unacked, max_value=seq),
            label="retry_seq",
        )
        op_r, args_r = ops[retry_seq - 1]
        applies_before = machine.session_applies
        retry_outcome = machine.apply(
            session_command("c", retry_seq, first_unacked, op_r, args_r)
        )
        assert machine.session_applies == applies_before
        if retry_seq == seq:
            assert retry_outcome == outcome
        # The client acks a prefix (or not) before the next request.
        acked = data.draw(
            st.integers(min_value=acked, max_value=seq), label="acked"
        )
    state = machine.sessions["c"]
    assert state.floor <= acked
    assert all(seq > state.floor for seq in state.results)


@given(delivery_schedules())
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_round_trip_preserves_dedup(schedule):
    _requests, deliveries = schedule
    machine = SessionMachine(KVStore())
    for client, seq, first_unacked, op, args in deliveries:
        machine.apply(session_command(client, seq, first_unacked, op, args))
    snap = machine.snapshot()

    restored = SessionMachine(KVStore())
    restored.restore(snap)
    assert restored.snapshot() == snap
    # A duplicate delivered after restore still hits the dedup table.
    client, seq, first_unacked, op, args = deliveries[0]
    before = restored.session_applies
    outcome = restored.apply(session_command(client, seq, first_unacked, op, args))
    assert restored.session_applies == before
    assert outcome == machine.lookup(client, seq)


def test_session_state_lookup_below_floor_is_a_pruned_error():
    state = SessionState()
    state.record(1, (OK, None))
    state.record(2, (OK, "x"))
    state.prune(3)  # client acked 1 and 2
    assert state.floor == 2
    assert state.results == {}
    status, message = state.lookup(1)
    assert status == ERROR and "pruned" in message
    assert state.lookup(3) is None
    assert state.applied_seq() == 2


def test_floor_never_regresses():
    state = SessionState()
    state.prune(5)
    assert state.floor == 4
    state.prune(2)  # stale cursor from a reordered duplicate
    assert state.floor == 4


def test_malformed_envelopes_rejected():
    machine = SessionMachine(KVStore())
    with pytest.raises(ProtocolError):
        machine.apply(Command("@session", ("c", 1, 1)))  # too few fields
    with pytest.raises(ProtocolError):
        machine.apply(session_command("c", 0, 1, "put", ("a", 1)))
    with pytest.raises(ProtocolError):
        machine.apply(session_command("c", True, 1, "put", ("a", 1)))
    with pytest.raises(ProtocolError):
        machine.apply(Command("@lease", (1,)))


def test_lease_commands_are_noops_with_upcalls():
    machine = SessionMachine(KVStore())
    renewals = []
    machine.on_lease_apply(lambda node, t: renewals.append((node, t)))
    inner_before = machine.inner.snapshot()
    assert machine.apply(lease_command(2, 1.5)) is None
    assert renewals == [(2, 1.5)]
    assert machine.lease_applies == 1
    assert machine.inner.snapshot() == inner_before


def test_local_read_bypasses_apply_and_rejects_mutations():
    machine = SessionMachine(KVStore())
    machine.apply(session_command("c", 1, 1, "put", ("a", 7)))
    index = machine.applied_index
    assert machine.local_read(Command("get", ("a",))) == 7
    assert machine.applied_index == index
    with pytest.raises(ProtocolError):
        machine.local_read(Command("put", ("a", 8)))
