"""Leader lease safety unit tests.

The lease's one job: a node may serve a local read only while no other
node could believe it is leader with an unexpired lease.  Expiry is
measured from renewal *submission* time; a newly installed leader
waits out one full lease before serving (except at bootstrap, where no
displaced leader exists).
"""

from repro.serve.lease import LeaderLease
from repro.types import View


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def test_non_leader_never_holds():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=1, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1, 2)))
    lease.note_renewal(1, 0.0)  # own renewal, but node 0 leads
    assert not lease.holds()
    assert lease.rejections == 1


def test_bootstrap_leader_serves_after_first_renewal_without_grace():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1, 2)))
    assert not lease.holds()  # no renewal applied yet
    lease.note_renewal(0, submit_time=0.0)
    assert lease.holds()
    assert lease.expiry == 0.5


def test_expiry_is_submission_time_plus_lease():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1)))
    # Renewal submitted at t=0.1; ordering latency does not extend it.
    clock.now = 0.4
    lease.note_renewal(0, submit_time=0.1)
    assert lease.expiry == 0.6
    clock.now = 0.59
    assert lease.holds()
    clock.now = 0.6  # strictly-before semantics at the boundary
    assert not lease.holds()
    # Renewals never shorten the lease.
    lease.note_renewal(0, submit_time=0.0)
    assert lease.expiry == 0.6


def test_other_nodes_renewals_ignored():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1)))
    lease.note_renewal(1, submit_time=0.0)
    assert not lease.holds()


def test_new_leader_waits_out_the_old_lease():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=1, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1, 2)))
    # Node 0 crashes; node 1 leads the next view at t=1.0.
    clock.now = 1.0
    lease.on_view(View(view_id=1, members=(1, 2)))
    lease.note_renewal(1, submit_time=1.0)
    # Inside the grace window: the displaced leader's lease (granted
    # from a submit_time < 1.0) may still be live somewhere.
    clock.now = 1.2
    assert not lease.holds()
    # Past the grace window, a fresh renewal serves.
    clock.now = 1.5
    lease.note_renewal(1, submit_time=1.4)
    assert lease.holds()


def test_grace_applies_even_on_a_first_view_with_nonzero_id():
    # A node that joins (or replays) straight into view 3 must not
    # assume bootstrap: somebody may have led view 2 with a live lease.
    clock = FakeClock(now=2.0)
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=3, members=(0, 1)))
    lease.note_renewal(0, submit_time=2.0)
    assert not lease.holds()
    clock.now = 2.5
    lease.note_renewal(0, submit_time=2.4)
    assert lease.holds()


def test_losing_leadership_drops_the_lease_immediately():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1)))
    lease.note_renewal(0, submit_time=0.0)
    assert lease.holds()
    lease.on_view(View(view_id=1, members=(1, 0)))  # node 1 now leads
    assert not lease.holds()
    # A stale renewal of ours applying after the view change is inert.
    lease.note_renewal(0, submit_time=0.1)
    assert not lease.holds()


def test_staying_leader_across_views_keeps_the_lease():
    clock = FakeClock()
    lease = LeaderLease(clock, node_id=0, lease_s=0.5)
    lease.on_view(View(view_id=0, members=(0, 1, 2)))
    lease.note_renewal(0, submit_time=0.0)
    clock.now = 0.2
    lease.on_view(View(view_id=1, members=(0, 2)))  # node 1 evicted
    assert lease.holds()  # still leader: no self-displacement, no grace
