"""Unit tests for the exactly-once invariant battery and outage metric.

These run on synthetic journals — no cluster — so every violation
branch is exercised, including the ones a healthy live run never hits.
"""

from repro.serve.loadgen import LoadStats
from repro.serve.runner import client_outage, verify_serve_run


def _stats(acked):
    stats = LoadStats()
    stats.acked_writes = acked
    return stats


def _apply(client, seq):
    return {"client": client, "seq": seq, "op": "put", "status": "ok"}


def test_clean_run_passes_the_battery():
    applied = [_apply("c", 1), _apply("c", 2), _apply("d", 1)]
    violations = verify_serve_run(
        _stats([("c", 1, "put", ()), ("c", 2, "put", ())]),
        {0: list(applied), 1: list(applied), 2: list(applied)},
        survivors=[0, 1, 2],
        snapshot_hashes={0: "h", 1: "h", 2: "h"},
    )
    assert violations == []


def test_lost_acked_write_detected():
    applied = [_apply("c", 1)]
    violations = verify_serve_run(
        _stats([("c", 1, "put", ()), ("c", 2, "put", ())]),  # seq 2 acked...
        {0: list(applied), 1: list(applied)},                 # ...never applied
        survivors=[0, 1],
    )
    assert any("lost or duplicated" in v for v in violations)


def test_double_apply_detected():
    applied = [_apply("c", 1), _apply("c", 1)]
    violations = verify_serve_run(
        _stats([("c", 1, "put", ())]),
        {0: applied},
        survivors=[0],
    )
    assert any("double apply" in v for v in violations)
    assert any("session order violated" in v for v in violations)


def test_session_order_regression_detected():
    applied = [_apply("c", 2), _apply("c", 1)]
    violations = verify_serve_run(
        _stats([]), {0: applied}, survivors=[0],
    )
    assert any("session order violated" in v for v in violations)


def test_survivor_divergence_detected():
    violations = verify_serve_run(
        _stats([]),
        {0: [_apply("c", 1)], 1: [_apply("d", 1)]},
        survivors=[0, 1],
    )
    assert any("total order violated" in v for v in violations)


def test_killed_node_must_be_a_prefix():
    survivor = [_apply("c", 1), _apply("c", 2)]
    ok = verify_serve_run(
        _stats([]),
        {0: survivor, 1: survivor[:1]},
        survivors=[0],
        killed=1,
    )
    assert ok == []
    bad = verify_serve_run(
        _stats([]),
        {0: survivor, 1: [_apply("d", 9)]},
        survivors=[0],
        killed=1,
    )
    assert any("uniformity violated" in v for v in bad)


def test_snapshot_hash_divergence_detected():
    applied = [_apply("c", 1)]
    violations = verify_serve_run(
        _stats([]),
        {0: list(applied), 1: list(applied)},
        survivors=[0, 1],
        snapshot_hashes={0: "aaaa", 1: "bbbb"},
    )
    assert any("snapshot hashes diverge" in v for v in violations)


# -- the outage metric -------------------------------------------------
def test_outage_is_the_worst_gap_straddling_the_kill():
    # Acks every 10 ms, a kill at t=1.0, service stalls until t=2.1.
    acks = [0.97, 0.98, 0.99, 2.1, 2.11, 2.12]
    outage = client_outage(acks, kill_time=1.0, window_s=3.0)
    assert abs(outage - (2.1 - 0.99)) < 1e-9


def test_outage_not_masked_by_in_flight_acks_draining():
    # Two in-flight responses land right after the SIGKILL; the real
    # stall is still the 1.1 s view-change gap.
    acks = [0.99, 1.001, 1.002, 2.1, 2.11]
    outage = client_outage(acks, kill_time=1.0, window_s=3.0)
    assert abs(outage - (2.1 - 1.002)) < 1e-9


def test_outage_ignores_trailing_drain_gaps_outside_the_window():
    acks = [0.99, 1.5, 9.0]  # the 7.5 s tail gap is not kill-related
    outage = client_outage(acks, kill_time=1.0, window_s=2.0)
    assert abs(outage - (1.5 - 0.99)) < 1e-9


def test_outage_none_without_acks_in_the_window():
    assert client_outage([0.5], kill_time=1.0, window_s=2.0) is None
    assert client_outage([], kill_time=1.0, window_s=2.0) is None


def test_outage_single_post_kill_ack_measured_from_the_kill():
    outage = client_outage([1.8], kill_time=1.0, window_s=2.0)
    assert abs(outage - 0.8) < 1e-9
