"""Live serve battery: real node processes, real TCP client sessions.

Three layers, all marked ``live_smoke``:

* sim/live conformance — the same scripted session replayed through a
  real serve cluster applies the identical command sequence the
  simulator pins down (``test_sim_conformance.py``);
* a leader-kill chaos regression — SIGKILL the lease holder mid-load
  and gate on the exactly-once invariant battery;
* the ``repro serve`` benchmark pipeline end to end.
"""

import asyncio
import contextlib
import tempfile

import pytest

from repro.serve.client import SessionClient
from repro.serve.runner import (
    ServeSpec,
    _await_starts,
    load_applied_log,
    run_serve_benchmark,
    run_serve_point,
)
from repro.serve.sim import (
    CONFORMANCE_SCRIPT,
    expected_applied,
    run_scripted_session,
)
from repro.live.runner import LiveCluster

pytestmark = pytest.mark.live_smoke

_START_TIMEOUT_S = 30.0
_SHUTDOWN_GRACE_S = 15.0


@contextlib.contextmanager
def serve_cluster(processes=3, **overrides):
    spec = ServeSpec(processes=processes, **overrides).live_spec()
    with tempfile.TemporaryDirectory(prefix="repro-serve-test-") as workdir:
        cluster = LiveCluster(spec, workdir, journals=True)
        try:
            _await_starts(cluster, _START_TIMEOUT_S)
            yield cluster
        finally:
            cluster.shutdown()


def _finish(cluster):
    """Terminate, reap, and return (records, applied-per-node)."""
    cluster.terminate()
    cluster.wait(_SHUTDOWN_GRACE_S, fail_fast=False)
    cluster.raise_on_failures()
    records = cluster.collect()
    applied = {
        pid: [(e["client"], e["seq"], e["op"]) for e in load_applied_log(path)]
        for pid, path in cluster.journal_paths.items()
    }
    return records, applied


def test_live_conformance_matches_sim():
    sim = run_scripted_session()
    expected = expected_applied(CONFORMANCE_SCRIPT)
    assert sim.applied[0] == expected  # the sim half, pinned again here

    with serve_cluster() as cluster:
        address = cluster.serve_addresses[cluster.members[0]]

        async def replay():
            # ordered_reads=True: gets ride the total order too, so
            # they appear in the applied sequence exactly as on the sim.
            clients = {
                name: SessionClient(name, [address], ordered_reads=True)
                for name in ("alice", "bob")
            }
            for client in clients.values():
                await client.connect()
            responses = {}
            try:
                for client_name, seq, _fu, op, args in CONFORMANCE_SCRIPT:
                    client = clients[client_name]
                    if (client_name, seq) in responses:
                        dup = await asyncio.wait_for(
                            client.duplicate(seq, op, *args), 10.0
                        )
                        first = responses[(client_name, seq)]
                        assert dup.served == "cached"
                        assert (dup.ok, dup.result, dup.error) == (
                            first.ok, first.result, first.error
                        )
                    else:
                        response = await asyncio.wait_for(
                            client.request(op, *args), 10.0
                        )
                        responses[(client_name, seq)] = response
            finally:
                for client in clients.values():
                    await client.close()

        asyncio.run(replay())
        records, applied = _finish(cluster)

    for node_id, node_applied in applied.items():
        assert node_applied == expected, f"node {node_id} diverged from sim"
    hashes = {r["serve"]["snapshot_hash"] for r in records.values()}
    assert len(hashes) == 1, "replica states diverged"


def test_session_dedup_and_failover_reads_live():
    with serve_cluster() as cluster:
        addresses = [cluster.serve_addresses[pid] for pid in cluster.members]

        async def scenario():
            client = SessionClient("solo", addresses, retry_timeout_s=2.0)
            await client.connect()
            try:
                put = await asyncio.wait_for(client.request("put", "k", "v"), 10.0)
                assert put.ok and put.served == "ordered"
                dup = await asyncio.wait_for(
                    client.duplicate(1, "put", "k", "v"), 10.0
                )
                assert dup.served == "cached" and dup.ok
                # Reads are session monotonic whichever node serves.
                read = await asyncio.wait_for(client.request("get", "k"), 10.0)
                assert read.ok and read.result == "v"
            finally:
                await client.close()

        asyncio.run(scenario())
        records, applied = _finish(cluster)

    # One application of seq 1 everywhere, despite the duplicate.
    for node_applied in applied.values():
        assert node_applied.count(("solo", 1, "put")) == 1


def test_leader_kill_preserves_exactly_once():
    """SIGKILL the lease holder mid-load: no acked write lost or doubly
    applied, and the client-visible outage is about detection plus a
    view change."""
    spec = ServeSpec(
        processes=3,
        rates=[120.0],
        duration_s=3.0,
        sessions=8,
        heartbeat_timeout_s=1.0,
        retry_timeout_s=1.0,
    )
    point = run_serve_point(spec, 120.0, kill_leader=True)
    assert point.violations == [], point.violations
    assert point.killed is not None
    assert point.stats.acked_writes, "no writes acked — load never ran"
    assert point.stats.timeouts == 0
    # Outage ≈ detection (heartbeat timeout) + view change + reconnect
    # slack; far below it would mean the metric missed the stall, far
    # above it that recovery dragged past detection + view change.
    assert point.outage_s is not None
    assert 0.3 < point.outage_s < spec.heartbeat_timeout_s + 2.0, point.outage_s


@pytest.mark.slow
def test_serve_benchmark_writes_bench_record(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    spec = ServeSpec(
        processes=3,
        rates=[60.0],
        duration_s=1.5,
        sessions=5,
        kill_leader=True,
        kill_rate=80.0,
    )
    payload = run_serve_benchmark(spec, out_path=str(out))
    import json

    on_disk = json.loads(out.read_text())
    assert on_disk == payload
    assert on_disk["schema"] == "repro.bench_serve/1"
    assert len(on_disk["curve"]) == 1
    assert on_disk["curve"][0]["load"]["completed"] > 0
    assert on_disk["kill_point"] is not None
    assert on_disk["kill_point"]["killed"] is not None
    assert on_disk["invariants_ok"] is True
