"""Unit tests for the structured trace log."""

from repro.sim import TraceLog


def test_disabled_log_records_nothing():
    trace = TraceLog(enabled=False)
    trace.emit(1.0, "net", "send", bytes=10)
    assert len(trace) == 0


def test_emit_and_filter():
    trace = TraceLog(enabled=True)
    trace.emit(1.0, "net", "send", dst=1)
    trace.emit(2.0, "net", "recv", src=0)
    trace.emit(3.0, "fsr", "send", dst=2)
    assert trace.count() == 3
    assert trace.count(source="net") == 2
    assert trace.count(kind="send") == 2
    assert trace.count(source="net", kind="send") == 1
    last = trace.last(kind="send")
    assert last is not None and last.source == "fsr"


def test_capacity_drops_and_counts():
    trace = TraceLog(enabled=True, capacity=2)
    for i in range(5):
        trace.emit(float(i), "s", "k", i=i)
    assert len(trace) == 2
    assert trace.dropped == 3


def test_sink_receives_records():
    trace = TraceLog(enabled=True)
    seen = []
    trace.add_sink(seen.append)
    trace.emit(1.0, "a", "b")
    assert len(seen) == 1 and seen[0].kind == "b"


def test_dump_elides_older_records():
    trace = TraceLog(enabled=True)
    for i in range(10):
        trace.emit(float(i), "s", "k", i=i)
    dump = trace.dump(limit=3)
    assert "elided" in dump
    assert "i=9" in dump


def test_record_str_is_readable():
    trace = TraceLog(enabled=True)
    trace.emit(1.5, "net", "send", dst=3, bytes=100)
    text = str(trace.records()[0])
    assert "net" in text and "send" in text and "dst=3" in text
