"""Unit tests for seeded random streams."""

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("net.jitter")
    b = RngRegistry(seed=42).stream("net.jitter")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    registry = RngRegistry(seed=42)
    jitter = registry.stream("net.jitter")
    arrivals = registry.stream("workload.arrivals")
    assert [jitter.random() for _ in range(5)] != [
        arrivals.random() for _ in range(5)
    ]


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s")
    b = RngRegistry(seed=2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_memoised():
    registry = RngRegistry(seed=7)
    assert registry.stream("x") is registry.stream("x")


def test_draw_order_in_one_stream_does_not_affect_another():
    """Adding draws to one subsystem must not perturb others."""
    r1 = RngRegistry(seed=9)
    baseline = [r1.stream("b").random() for _ in range(5)]

    r2 = RngRegistry(seed=9)
    r2.stream("a").random()  # extra draw elsewhere
    perturbed = [r2.stream("b").random() for _ in range(5)]
    assert baseline == perturbed


def test_fork_is_independent_and_stable():
    root = RngRegistry(seed=3)
    fork_a = root.fork("rep1")
    fork_b = RngRegistry(seed=3).fork("rep1")
    assert [fork_a.stream("s").random() for _ in range(3)] == [
        fork_b.stream("s").random() for _ in range(3)
    ]
    assert root.fork("rep1").seed != root.fork("rep2").seed
