"""Unit tests for shared value types."""

import pytest

from repro.types import (
    CrashEvent,
    Delivery,
    MessageId,
    ProcessSet,
    TimerHandle,
    View,
)


def test_message_id_ordering_and_str():
    a = MessageId(origin=1, local_seq=2)
    b = MessageId(origin=1, local_seq=3)
    c = MessageId(origin=2, local_seq=1)
    assert a < b < c
    assert str(a) == "m1.2"
    assert a == MessageId(origin=1, local_seq=2)
    assert len({a, b, a}) == 2  # hashable


def test_process_set_ring_arithmetic():
    ring = ProcessSet(members=(5, 9, 2))
    assert len(ring) == 3
    assert 9 in ring and 7 not in ring
    assert list(ring) == [5, 9, 2]
    assert ring.position_of(2) == 2
    assert ring.successor_of(2) == 5
    assert ring.predecessor_of(5) == 2
    assert ring.at_position(4) == 9


def test_process_set_rejects_duplicates():
    with pytest.raises(ValueError):
        ProcessSet(members=(1, 1, 2))


def test_view_helpers():
    view = View(view_id=3, members=(4, 7, 1))
    assert len(view) == 3
    assert 7 in view
    assert view.leader() == 4
    assert view.process_set().successor_of(1) == 4
    with pytest.raises(ValueError):
        View(view_id=0, members=(1, 1))
    with pytest.raises(ValueError):
        View(view_id=0, members=()).leader()


def test_view_is_immutable_and_hashable():
    view = View(view_id=1, members=(0, 1))
    with pytest.raises(AttributeError):
        view.view_id = 2  # type: ignore[misc]
    assert hash(view) == hash(View(view_id=1, members=(0, 1)))


def test_delivery_key():
    delivery = Delivery(
        process=3, message_id=MessageId(origin=2, local_seq=9),
        sequence=5, time=1.0,
    )
    assert delivery.key() == (2, 9)


def test_timer_handle_cancel():
    handle = TimerHandle(sequence=1)
    assert not handle.cancelled
    handle.cancel()
    assert handle.cancelled


def test_crash_event_defaults():
    event = CrashEvent(process=2, time=1.5)
    assert event.reason == "injected"
