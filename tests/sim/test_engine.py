"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(3.0, seen.append, "last")
    sim.run()
    assert seen == ["early", "late", "last"]
    assert sim.now == 3.0


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    seen = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_before_now_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    handle.cancel()
    sim.run()
    assert seen == ["kept"]


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "at-1")
    sim.schedule(2.0, seen.append, "at-2")
    sim.run(until=1.0)
    assert seen == ["at-1"]
    assert sim.now == 1.0
    sim.run(until=1.5)
    assert sim.now == 1.5  # clock advances even with no events
    sim.run()
    assert seen == ["at-1", "at-2"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(0.5, seen.append, "nested")

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "nested"]
    assert sim.now == 1.5


def test_zero_delay_event_runs_at_same_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_step_executes_one_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i + 1), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_run_is_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_events_processed_counter_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_drain_cancelled_compacts_heap():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[:7]:
        handle.cancel()
    removed = sim.drain_cancelled()
    assert removed == 7
    assert sim.pending_events == 3
    sim.run()
    assert sim.events_processed == 3


def test_determinism_across_runs():
    def run_once():
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("x"), sim.schedule(0.0, order.append, "y")))
        sim.schedule(1.0, order.append, "z")
        sim.run()
        return order, sim.now

    assert run_once() == run_once()
