"""Protocol-specific behaviour tests for the baselines."""

import pytest

from repro.checker import check_all
from repro.errors import ConfigurationError
from repro.protocols.fixed_sequencer import FixedSequencerConfig
from repro.protocols.moving_sequencer import MovingSequencerConfig
from repro.protocols.privilege import PrivilegeConfig
from tests.conftest import run_broadcasts, small_cluster


def test_fixed_sequencer_nic_is_the_bottleneck():
    """The paper's Figure 1 claim: the sequencer transmits every payload
    n-1 times while other nodes transmit only their own."""
    cluster = small_cluster(n=5, protocol="fixed_sequencer", protocol_config=None)
    result = run_broadcasts(cluster, [(pid, 4, 20_000) for pid in range(1, 5)])
    check_all(result)
    sequencer_tx = result.nic_stats[0].wire_bytes_tx
    other_tx = max(result.nic_stats[p].wire_bytes_tx for p in range(1, 5))
    assert sequencer_tx > 2.5 * other_tx


def test_fixed_sequencer_custom_sequencer_index():
    cluster = small_cluster(
        n=4,
        protocol="fixed_sequencer",
        protocol_config=FixedSequencerConfig(sequencer_index=2),
    )
    result = run_broadcasts(cluster, [(0, 3, 5_000)])
    check_all(result)
    assert result.nic_stats[2].wire_bytes_tx > result.nic_stats[1].wire_bytes_tx


def test_moving_sequencer_rotates_sequencing():
    """With several senders, more than one process assigns sequences."""
    cluster = small_cluster(
        n=4,
        protocol="moving_sequencer",
        protocol_config=MovingSequencerConfig(idle_hold_s=0.5e-3, max_per_token=2),
    )
    result = run_broadcasts(cluster, [(pid, 6, 2_000) for pid in range(4)])
    check_all(result)


def test_privilege_token_pass_counting():
    cluster = small_cluster(
        n=4,
        protocol="privilege",
        protocol_config=PrivilegeConfig(max_per_token=2, idle_hold_s=0.5e-3),
    )
    result = run_broadcasts(cluster, [(1, 8, 2_000), (3, 8, 2_000)])
    check_all(result)
    passes = sum(
        node.protocol.stats_token_passes for node in cluster.nodes.values()
    )
    # 16 messages at <=2 per visit forces at least 8 full visits.
    assert passes >= 8


def test_privilege_respects_max_per_token():
    """Delivered order shows no run of one origin longer than the quota
    while both senders still have traffic pending."""
    quota = 3
    cluster = small_cluster(
        n=4,
        protocol="privilege",
        protocol_config=PrivilegeConfig(max_per_token=quota, idle_hold_s=0.5e-3),
    )
    result = run_broadcasts(cluster, [(1, 9, 2_000), (2, 9, 2_000)])
    check_all(result)
    order = [d.message_id.origin for d in result.delivery_logs[0].deliveries]
    # Ignore the tail where only one sender has messages left.
    head = order[: len(order) - quota]
    longest_run = 1
    current = 1
    for a, b in zip(head, head[1:]):
        current = current + 1 if a == b else 1
        longest_run = max(longest_run, current)
    assert longest_run <= quota


def test_communication_history_delivers_during_idle_via_nulls():
    """A lone quiet broadcast still completes (null messages advance
    the clock front)."""
    cluster = small_cluster(n=4, protocol="communication_history", protocol_config=None)
    result = run_broadcasts(cluster, [(2, 1, 1_000)])
    check_all(result)


def test_destination_agreement_batches_under_load():
    """Concurrent submissions are decided in few instances (batching)."""
    cluster = small_cluster(n=4, protocol="destination_agreement", protocol_config=None)
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(4):
        for _ in range(10):
            cluster.broadcast(pid, size_bytes=1_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(40), max_time_s=60)
    result = cluster.results()
    check_all(result)
    instances = max(
        node.protocol._next_instance for node in cluster.nodes.values()
    )
    assert instances - 1 < 40  # strictly fewer instances than messages


def test_wrong_config_type_rejected():
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        small_cluster(
            n=3, protocol="privilege", protocol_config=MovingSequencerConfig()
        )


def test_unknown_protocol_rejected():
    from repro.cluster import ClusterConfig, build_cluster

    with pytest.raises(ConfigurationError):
        build_cluster(ClusterConfig(n=3, protocol="does_not_exist"))


def test_registry_lists_all_protocols():
    from repro.protocols import PROTOCOLS

    assert set(PROTOCOLS) >= {
        "fsr",
        "fixed_sequencer",
        "moving_sequencer",
        "privilege",
        "communication_history",
        "destination_agreement",
    }
