"""Unit tests for the multi-ring building blocks.

Covers the three pure pieces in isolation: bucket/slot arithmetic
(:mod:`repro.protocols.multiring.buckets`), the bucket-interleaving
multiplexer (:mod:`repro.protocols.multiring.mux`), and the protocol
configuration validation.  Cluster-level behaviour lives in
``test_multiring_cluster.py``.
"""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.core.fsr import FSRConfig
from repro.protocols.multiring import (
    NOOP_MAGIC,
    InterleaveMux,
    MultiRingConfig,
    bucket_of_sender,
    bucket_of_slot,
    mix64,
    offset_for_ring,
    ring_of_bucket,
    ring_of_sender,
    ring_of_slot,
    rotated_members,
)
from repro.protocols.multiring.mux import decode_noop, encode_noop
from repro.types import MessageId


# ----------------------------------------------------------------------
# Bucket arithmetic
# ----------------------------------------------------------------------
def test_mix64_is_deterministic_and_spread():
    assert mix64(7) == mix64(7)
    assert 0 <= mix64(7) < 1 << 64
    # The mixer must actually spread a dense sender space; a degenerate
    # mixer (identity, constant) would pile senders onto few buckets.
    buckets = {bucket_of_sender(s, 32) for s in range(64)}
    assert len(buckets) > 16


def test_ring_of_bucket_rotation_is_cyclic():
    shards = 4
    for bucket in range(32):
        base = ring_of_bucket(bucket, epoch=0, shards=shards)
        # Advancing the epoch by one moves every bucket to the next ring;
        # advancing by S is the identity.
        assert ring_of_bucket(bucket, 1, shards) == (base + 1) % shards
        assert ring_of_bucket(bucket, shards, shards) == base


def test_ring_of_sender_composes_bucket_and_rotation():
    for sender in range(8):
        for epoch in (0, 1, 5):
            assert ring_of_sender(sender, epoch, 2, 32) == ring_of_bucket(
                bucket_of_sender(sender, 32), epoch, 2
            )


def test_slot_mapping_is_static_and_bucket_consistent():
    # slot -> ring never depends on the epoch, and with num_buckets a
    # multiple of shards it agrees with bucket arithmetic.
    for shards, num_buckets in ((1, 32), (2, 32), (4, 32), (4, 8)):
        for slot in range(3 * num_buckets):
            assert ring_of_slot(slot, shards) == slot % shards
            assert bucket_of_slot(slot, num_buckets) % shards == ring_of_slot(
                slot, shards
            )


def test_rotated_members_preserves_successor():
    # Rotation must keep the cyclic successor order: every node has the
    # SAME ring successor in all S rings (one live TCP neighbour, S
    # ports), only the chain *head* moves.
    members = tuple(range(6))

    def successor(ring_members, node):
        i = ring_members.index(node)
        return ring_members[(i + 1) % len(ring_members)]

    for shards in (2, 3):
        for ring in range(shards):
            rotated = rotated_members(members, ring, shards)
            assert sorted(rotated) == sorted(members)
            assert rotated[0] == offset_for_ring(ring, 6, shards)
            for node in members:
                assert successor(rotated, node) == successor(members, node)


def test_offset_for_ring_spreads_leaders():
    offsets = {offset_for_ring(ring, 8, 4) for ring in range(4)}
    assert offsets == {0, 2, 4, 6}


# ----------------------------------------------------------------------
# Noop encoding
# ----------------------------------------------------------------------
def test_noop_roundtrip_and_real_payloads():
    assert decode_noop(encode_noop(1)) == 1
    assert decode_noop(encode_noop(17)) == 17
    # The all-zero payloads the workload drivers submit must never be
    # mistaken for noops.
    assert decode_noop(bytes(100)) is None
    assert decode_noop(b"hello") is None
    assert decode_noop(None) is None
    assert decode_noop(NOOP_MAGIC) == 1  # bare magic defaults to weight 1
    with pytest.raises(ProtocolError):
        encode_noop(0)


# ----------------------------------------------------------------------
# The interleaving multiplexer
# ----------------------------------------------------------------------
def _mid(origin, local):
    return MessageId(origin=origin, local_seq=local)


def _mux(shards):
    released = []
    mux = InterleaveMux(
        shards,
        lambda ring, slot, seq, item: released.append(
            (ring, slot, seq, item.message_id)
        ),
    )
    return mux, released


def test_mux_round_robins_slots_across_rings():
    mux, released = _mux(2)
    mux.push_real(0, 0, _mid(0, 1), b"a", 10)
    mux.push_real(1, 1, _mid(1, 1), b"b", 10)
    mux.push_real(0, 0, _mid(0, 2), b"c", 10)
    mux.push_real(1, 1, _mid(1, 2), b"d", 10)
    assert released == [
        (0, 0, 1, _mid(0, 1)),
        (1, 1, 2, _mid(1, 1)),
        (0, 2, 3, _mid(0, 2)),
        (1, 3, 4, _mid(1, 2)),
    ]
    assert mux.slot == 4
    assert mux.next_sequence == 5


def test_mux_stalls_on_empty_due_ring_and_noop_unblocks():
    mux, released = _mux(2)
    # Slot 0 is due from ring 0, which is empty: the real message queued
    # on ring 1 must wait (this is exactly the head-of-line state).
    mux.push_real(1, 1, _mid(1, 1), b"x", 10)
    assert released == []
    assert mux.blocked
    assert mux.due_ring == 0
    assert mux.pending_real() == 1
    mux.push_noop(0, 1)
    assert released == [(1, 1, 1, _mid(1, 1))]
    assert not mux.blocked


def test_mux_weighted_noop_covers_multiple_slots():
    mux, released = _mux(2)
    mux.push_noop(0, 3)  # covers ring 0's slots 0, 2, 4
    for local in (1, 2, 3):
        mux.push_real(1, 1, _mid(1, local), b"x", 10)
    assert [(slot, seq) for _, slot, seq, _ in released] == [
        (1, 1), (3, 2), (5, 3)
    ]
    # All three noop slots consumed: slot 6 is due from ring 0 again.
    assert mux.slot == 6
    assert mux.due_ring == 0


def test_mux_global_sequence_counts_real_messages_only():
    mux, released = _mux(2)
    mux.push_noop(0, 2)
    mux.push_real(1, 1, _mid(1, 1), b"x", 10)
    mux.push_real(1, 1, _mid(1, 2), b"y", 10)
    # Sequences stay contiguous from 1 even though slots 0 and 2 were
    # burned by the noop.
    assert [seq for _, _, seq, _ in released] == [1, 2]


def test_mux_reentrant_push_from_delivery_callback():
    # An on_deliver upcall may feed the mux (the app broadcasting from
    # its delivery handler); the drain must stay single and ordered.
    released = []
    mux = InterleaveMux(1, lambda ring, slot, seq, item: None)

    def on_deliver(ring, slot, seq, item):
        released.append((slot, seq, item.message_id))
        if item.message_id == _mid(0, 1):
            mux.push_real(0, 0, _mid(0, 2), b"again", 10)

    mux._on_deliver = on_deliver
    mux.push_real(0, 0, _mid(0, 1), b"first", 10)
    assert released == [(0, 1, _mid(0, 1)), (1, 2, _mid(0, 2))]


def test_mux_rejects_bad_arguments():
    with pytest.raises(ProtocolError):
        InterleaveMux(0, lambda *a: None)
    mux, _ = _mux(2)
    with pytest.raises(ProtocolError):
        mux.push_noop(0, 0)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
def test_config_defaults_are_valid():
    config = MultiRingConfig()
    assert config.shards == 2
    assert config.num_buckets % config.shards == 0


@pytest.mark.parametrize("kwargs", [
    dict(shards=0),
    dict(shards=3, num_buckets=32),   # 32 % 3 != 0
    dict(shards=4, num_buckets=2),    # fewer buckets than shards
    dict(noop_delay_s=0.0),
])
def test_config_rejects_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        MultiRingConfig(fsr=FSRConfig(t=1), **kwargs)
