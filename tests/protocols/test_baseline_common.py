"""Common contract tests run over every baseline protocol.

Every protocol in the registry must provide uniform total order in
crash-free runs, whatever the traffic pattern.  These tests sweep all
of them through the same scenarios and checkers.
"""

import pytest

from repro.checker import check_all
from tests.conftest import run_broadcasts, small_cluster

BASELINES = [
    "fixed_sequencer",
    "moving_sequencer",
    "privilege",
    "communication_history",
    "destination_agreement",
]
ALL_PROTOCOLS = ["fsr"] + BASELINES


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_single_sender_total_order(protocol):
    cluster = small_cluster(n=4, protocol=protocol, protocol_config=None)
    result = run_broadcasts(cluster, [(1, 5, 2_000)])
    check_all(result)
    assert all(len(log) == 5 for log in result.delivery_logs.values())


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_all_senders_total_order(protocol):
    cluster = small_cluster(n=4, protocol=protocol, protocol_config=None)
    result = run_broadcasts(cluster, [(pid, 4, 2_000) for pid in range(4)])
    check_all(result)
    reference = [str(d.message_id) for d in result.delivery_logs[0].deliveries]
    assert len(reference) == 16
    for log in result.delivery_logs.values():
        assert [str(d.message_id) for d in log.deliveries] == reference


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_two_senders_interleaved(protocol):
    cluster = small_cluster(n=5, protocol=protocol, protocol_config=None)
    result = run_broadcasts(cluster, [(1, 6, 1_000), (4, 6, 1_000)])
    check_all(result)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_two_process_group(protocol):
    cluster = small_cluster(n=2, protocol=protocol, protocol_config=None)
    result = run_broadcasts(cluster, [(0, 3, 1_000), (1, 3, 1_000)])
    check_all(result)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_large_messages(protocol):
    cluster = small_cluster(n=3, protocol=protocol, protocol_config=None)
    result = run_broadcasts(
        cluster, [(0, 2, 100_000), (2, 2, 100_000)], max_time_s=120.0
    )
    check_all(result)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_payload_contents_survive(protocol):
    cluster = small_cluster(n=3, protocol=protocol, protocol_config=None)
    cluster.start()
    cluster.run(until=5e-3)
    payload = b"the-actual-bytes-matter"
    cluster.broadcast(1, payload=payload)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=30)
    result = cluster.results()
    for deliveries in result.app_deliveries.values():
        assert len(deliveries) == 1
        assert deliveries[0].origin == 1
