"""Sequencer failover tests (paper §2.1: "a new sequencer is elected
only in the case the previous sequencer fails")."""

import pytest

from repro.checker import (
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
)
from tests.conftest import small_cluster


def _run_with_crash(n, victim, per_sender=6, size=5_000, crash_at=0.03):
    cluster = small_cluster(n=n, protocol="fixed_sequencer", protocol_config=None)
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(n):
        for _ in range(per_sender):
            cluster.broadcast(pid, size_bytes=size)
    cluster.schedule_crash(victim, time=crash_at)
    survivors = [p for p in range(n) if p != victim]
    expected = per_sender * (n - 1)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != victim)
            >= expected
            for p in survivors
        ),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 10e-3)
    return cluster, cluster.results()


def _assert_safe(result):
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_uniformity(result)


def test_sequencer_crash_elects_next_member():
    cluster, result = _run_with_crash(n=4, victim=0)
    _assert_safe(result)
    for pid in (1, 2, 3):
        assert cluster.nodes[pid].protocol.sequencer == 1


def test_non_sequencer_crash_keeps_sequencer():
    cluster, result = _run_with_crash(n=4, victim=2)
    _assert_safe(result)
    assert cluster.nodes[0].protocol.sequencer == 0


def test_all_correct_senders_messages_survive():
    cluster, result = _run_with_crash(n=5, victim=0, per_sender=5)
    _assert_safe(result)
    for survivor in (1, 2, 3, 4):
        for origin in (1, 2, 3, 4):
            count = sum(
                1 for d in result.app_deliveries[survivor] if d.origin == origin
            )
            assert count == 5, (survivor, origin, count)


def test_two_successive_sequencer_crashes():
    cluster = small_cluster(n=5, protocol="fixed_sequencer", protocol_config=None)
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(6):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.schedule_crash(0, time=0.02)
    cluster.schedule_crash(1, time=0.08)
    survivors = (2, 3, 4)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin in survivors)
            >= 18
            for p in survivors
        ),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 10e-3)
    result = cluster.results()
    _assert_safe(result)
    assert cluster.nodes[2].protocol.sequencer == 2


def test_crashed_sequencer_log_is_prefix():
    cluster, result = _run_with_crash(n=4, victim=0, per_sender=8)
    crashed = [str(d.message_id) for d in result.delivery_logs[0].deliveries]
    survivor = [str(d.message_id) for d in result.delivery_logs[1].deliveries]
    assert crashed == survivor[: len(crashed)]
