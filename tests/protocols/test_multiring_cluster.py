"""Cluster-level multi-ring tests on the simulator.

The satellite guarantees: ``--shards 1`` is byte-identical to the
single-ring FSR path; S > 1 runs pass the full invariant battery with
ring/slot-tagged deliveries; and decapitating one ring's sequencer
chain stalls only that ring's buckets until the view change rotates
them onto a surviving chain.
"""

import pytest

from repro.checker import check_all
from repro.core.fsr import FSRConfig
from repro.protocols.multiring import (
    MultiRingConfig,
    MultiRingProcess,
    offset_for_ring,
)
from tests.conftest import run_broadcasts, small_cluster

PLAN = [(0, 5, 8_000), (1, 5, 8_000), (2, 5, 8_000)]


def _delivered(result):
    """Per-process delivered stream: (message_id, sequence) pairs."""
    return {
        pid: [(d.message_id, d.sequence) for d in log.deliveries]
        for pid, log in result.delivery_logs.items()
    }


def test_single_shard_is_byte_identical_to_fsr():
    # shards=1 delegates to the plain FSR builder, so the same seed and
    # workload must produce the *same* delivered sequences — no mux, no
    # noop traffic, no ring tags.
    fsr = run_broadcasts(
        small_cluster(n=4, seed=7), PLAN
    )
    multi = run_broadcasts(
        small_cluster(
            n=4,
            protocol="multiring",
            protocol_config=MultiRingConfig(shards=1, fsr=FSRConfig(t=1)),
            seed=7,
        ),
        PLAN,
    )
    assert _delivered(multi) == _delivered(fsr)
    for log in multi.delivery_logs.values():
        assert all(d.ring is None and d.slot is None for d in log.deliveries)
    check_all(multi)


@pytest.mark.parametrize("shards", [2, 4])
def test_multiring_delivers_one_agreed_order(shards):
    cluster = small_cluster(
        n=4,
        protocol="multiring",
        protocol_config=MultiRingConfig(shards=shards, fsr=FSRConfig(t=1)),
        seed=3,
    )
    plan = [(pid, 4, 8_000) for pid in range(4)]
    result = run_broadcasts(cluster, plan)
    check_all(result)  # includes the shard-interleave checker
    streams = set()
    for pid, log in result.delivery_logs.items():
        assert len(log) == 16
        for d in log.deliveries:
            assert d.ring is not None and 0 <= d.ring < shards
            assert d.slot is not None and d.slot % shards == d.ring
        streams.add(tuple((d.message_id, d.sequence) for d in log.deliveries))
    # Every node extended the identical multiplexed order.
    assert len(streams) == 1


def test_multiring_processes_expose_inner_rings():
    cluster = small_cluster(
        n=4,
        protocol="multiring",
        protocol_config=MultiRingConfig(shards=2, fsr=FSRConfig(t=1)),
    )
    for node in cluster.nodes.values():
        assert isinstance(node.protocol, MultiRingProcess)
        assert len(node.protocol.inner) == 2
        assert node.protocol.epoch == 0


def test_ring_chain_crash_rotates_buckets_and_recovers():
    n, shards = 6, 2
    cluster = small_cluster(
        n=n,
        protocol="multiring",
        protocol_config=MultiRingConfig(shards=shards, fsr=FSRConfig(t=1)),
        seed=11,
    )
    # Decapitate ring 1: its rotated member list starts at this node, so
    # killing it takes down that ring's sequencer.
    victim = offset_for_ring(1, n, shards)
    senders = [p for p in range(n) if p != victim]

    cluster.start()
    cluster.run(until=5e-3)
    per_sender = 4
    for pid in senders:
        for _ in range(per_sender):
            cluster.broadcast(pid, size_bytes=8_000)
    cluster.schedule_crash(victim, time=0.03)

    expected = per_sender * len(senders)
    cluster.run_until(
        lambda: all(
            len(cluster.nodes[p].app_deliveries) >= expected for p in senders
        ),
        max_time_s=120.0,
    )
    # The view change installed: the epoch advanced, rotating the dead
    # ring's buckets onto the surviving chain.
    for pid in senders:
        assert cluster.nodes[pid].protocol.epoch >= 1

    # Post-rotation traffic must keep flowing through the new mapping.
    for pid in senders[:2]:
        cluster.broadcast(pid, size_bytes=8_000)
    cluster.run_until(
        lambda: all(
            len(cluster.nodes[p].app_deliveries) >= expected + 2
            for p in senders
        ),
        max_time_s=120.0,
    )
    cluster.run(until=cluster.sim.now + 10e-3)

    result = cluster.results()
    check_all(result)
    streams = {
        tuple(
            (d.message_id, d.sequence)
            for d in result.delivery_logs[p].deliveries
        )
        for p in senders
    }
    assert len(streams) == 1
