"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import pytest

from repro.cluster import Cluster, ClusterConfig, build_cluster
from repro.core.fsr import FSRConfig
from repro.net.params import NetworkParams


def fast_params(**overrides) -> NetworkParams:
    """Network params with small messages in mind: quick simulations."""
    defaults = dict(
        bandwidth_bps=100e6,
        propagation_delay_s=10e-6,
        cpu_per_message_s=20e-6,
        cpu_per_byte_s=5e-9,
    )
    defaults.update(overrides)
    return NetworkParams(**defaults)


def small_cluster(
    n: int = 3,
    protocol: str = "fsr",
    protocol_config=None,
    **config_overrides,
) -> Cluster:
    """A cluster tuned for fast unit-level runs (small CPU costs)."""
    if protocol == "fsr" and protocol_config is None:
        protocol_config = FSRConfig(t=1)
    config = ClusterConfig(
        n=n,
        protocol=protocol,
        protocol_config=protocol_config,
        network=config_overrides.pop("network", fast_params()),
        **config_overrides,
    )
    return build_cluster(config)


def run_broadcasts(
    cluster: Cluster,
    plan: Sequence[Tuple[int, int, int]],
    settle_s: float = 5e-3,
    max_time_s: float = 60.0,
):
    """Start the cluster, apply ``(sender, count, size)`` triples, run
    to completion, and return the results."""
    cluster.start()
    cluster.run(until=settle_s)
    expected = 0
    for sender, count, size in plan:
        for _ in range(count):
            cluster.broadcast(sender, size_bytes=size)
            expected += 1
    cluster.run_until(
        lambda: cluster.all_correct_delivered(expected),
        step_s=10e-3,
        max_time_s=max_time_s,
    )
    cluster.run(until=cluster.sim.now + settle_s)
    return cluster.results()


@pytest.fixture
def sim():
    from repro.sim import Simulator

    return Simulator()
