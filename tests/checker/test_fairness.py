"""Unit + behavioural tests for the fairness metric."""

import pytest

from repro.checker import sender_fairness
from repro.core.fsr import FSRConfig
from repro.errors import CheckFailure
from repro.workloads import KToNPattern, run_workload
from tests.conftest import small_cluster
from tests.checker.test_order import build_result


def test_needs_senders():
    result = build_result({0: [], 1: []})
    with pytest.raises(CheckFailure):
        sender_fairness(result, senders=[])


def test_fair_logs_score_one():
    result = build_result({
        0: [(0, 1, 1), (1, 1, 2)],
        1: [(0, 1, 1), (1, 1, 2)],
    })
    assert sender_fairness(result, senders=[0, 1]) == pytest.approx(1.0)


def test_cutoff_exposes_stragglers():
    result = build_result({
        0: [(0, 1, 1), (0, 2, 2), (1, 1, 3)],
        1: [(0, 1, 1), (0, 2, 2), (1, 1, 3)],
    })
    # All of sender 0's messages complete early; sender 1's completes
    # at the end.  A mid-run cutoff shows the imbalance.
    full = sender_fairness(result, senders=[0, 1])
    early = sender_fairness(result, senders=[0, 1], until=0.0045)
    assert full > early


def test_fsr_two_opposite_senders_fair_at_cutoff():
    """The paper's fairness scenario: two senders at opposite ring
    positions, continuous streams; completions stay balanced even
    mid-run."""
    cluster = small_cluster(n=6, protocol_config=FSRConfig(t=1))
    pattern = KToNPattern(senders=(1, 4), messages_per_sender=20,
                          message_bytes=10_000)
    outcome = run_workload(cluster, pattern)
    midpoint = outcome.start_time + (
        outcome.result.duration_s - outcome.start_time
    ) / 2
    fairness = sender_fairness(outcome.result, senders=[1, 4], until=midpoint)
    assert fairness > 0.95
