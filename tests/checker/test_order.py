"""Unit tests for the broadcast-property checkers.

Each checker is fed hand-built delivery logs containing one specific
violation, and must name it; clean logs must pass.
"""

import pytest

from repro.checker import (
    check_agreement,
    check_all,
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
    check_validity,
)
from repro.cluster.results import AppDelivery, ExperimentResult
from repro.core.api import DeliveryLog
from repro.errors import CheckFailure
from repro.sim import TraceLog
from repro.types import BroadcastRecord, MessageId


def mid(origin, local):
    return MessageId(origin=origin, local_seq=local)


def build_result(logs, broadcasts=None, crashed=None):
    """logs: {pid: [(origin, local, seq), ...]}"""
    delivery_logs = {}
    app = {}
    origins = {}
    records = []
    time = 0.0
    for pid, entries in logs.items():
        log = DeliveryLog(process=pid)
        app[pid] = []
        for origin, local, seq in entries:
            time += 0.001
            log.record(mid(origin, local), sequence=seq, time=time, size_bytes=10)
            app[pid].append(
                AppDelivery(
                    process=pid, origin=origin, message_id=mid(origin, local),
                    size_bytes=10, time=time,
                )
            )
        delivery_logs[pid] = log
    if broadcasts is None:
        seen = {
            (d.message_id.origin, d.message_id.local_seq)
            for log in delivery_logs.values()
            for d in log.deliveries
        }
        broadcasts = sorted(seen)
    for origin, local in broadcasts:
        records.append(
            BroadcastRecord(message_id=mid(origin, local), size_bytes=10,
                            submit_time=0.0)
        )
        origins[mid(origin, local)] = origin
    return ExperimentResult(
        config=None,
        duration_s=time,
        delivery_logs=delivery_logs,
        app_deliveries=app,
        broadcasts=records,
        broadcast_origin=origins,
        crashed=crashed or {},
        nic_stats={},
        trace=TraceLog(),
    )


CLEAN = {
    0: [(0, 1, 1), (1, 1, 2)],
    1: [(0, 1, 1), (1, 1, 2)],
}


def test_clean_logs_pass_everything():
    check_all(build_result(CLEAN))


def test_integrity_catches_duplicate():
    result = build_result({0: [(0, 1, 1), (0, 1, 2)], 1: [(0, 1, 1)]})
    with pytest.raises(CheckFailure, match="integrity"):
        check_integrity(result)


def test_integrity_catches_phantom_origin():
    result = build_result(
        {0: [(9, 1, 1)], 1: [(9, 1, 1)]},
        broadcasts=[(0, 1)],  # only process 0 ever broadcast
    )
    with pytest.raises(CheckFailure, match="integrity"):
        check_integrity(result)


def test_total_order_catches_inversion():
    result = build_result({
        0: [(0, 1, 1), (1, 1, 2)],
        1: [(1, 1, 1), (0, 1, 2)],
    })
    with pytest.raises(CheckFailure, match="total order"):
        check_total_order(result)


def test_total_order_allows_prefix_logs():
    result = build_result({
        0: [(0, 1, 1), (1, 1, 2), (2, 1, 3)],
        1: [(0, 1, 1), (1, 1, 2)],
    })
    check_total_order(result)  # prefix is fine (order-wise)


def test_sequence_consistency_catches_reuse():
    result = build_result({
        0: [(0, 1, 1)],
        1: [(1, 1, 1)],  # same sequence, different message
    })
    with pytest.raises(CheckFailure, match="sequence"):
        check_sequence_consistency(result)


def test_sequence_consistency_catches_non_monotone():
    result = build_result({0: [(0, 1, 2), (1, 1, 1)]})
    with pytest.raises(CheckFailure, match="sequence"):
        check_sequence_consistency(result)


def test_agreement_catches_divergent_sets():
    result = build_result({
        0: [(0, 1, 1), (1, 1, 2)],
        1: [(0, 1, 1)],
    })
    with pytest.raises(CheckFailure, match="agreement"):
        check_agreement(result)


def test_agreement_ignore_list():
    result = build_result({
        0: [(0, 1, 1), (1, 1, 2)],
        1: [(0, 1, 1)],
    })
    check_agreement(result, ignore=[1])


def test_agreement_skips_crashed():
    result = build_result(
        {
            0: [(0, 1, 1), (1, 1, 2)],
            1: [(0, 1, 1)],
        },
        crashed={1: 0.5},
    )
    check_agreement(result)


def test_uniformity_covers_crashed_deliveries():
    result = build_result(
        {
            0: [(0, 1, 1), (1, 1, 2)],  # crashed, but delivered both
            1: [(0, 1, 1)],             # correct, missing one
        },
        crashed={0: 0.5},
    )
    with pytest.raises(CheckFailure, match="uniformity"):
        check_uniformity(result)


def test_validity_catches_lost_message_from_correct_sender():
    result = build_result(
        {0: [(0, 1, 1)], 1: [(0, 1, 1)]},
        broadcasts=[(0, 1), (1, 1)],  # process 1 broadcast, never delivered
    )
    with pytest.raises(CheckFailure, match="validity"):
        check_validity(result)


def test_validity_tolerates_crashed_senders_losses():
    result = build_result(
        {0: [(0, 1, 1)], 1: [(0, 1, 1)], 2: []},
        broadcasts=[(0, 1), (2, 1)],
        crashed={2: 0.1},
    )
    check_validity(result)
