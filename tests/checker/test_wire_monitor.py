"""Tests for the online wire-invariant monitor."""

import pytest

from repro.checker.wire_monitor import WireMonitor, attach_wire_monitor
from repro.core.fsr import FSRConfig
from repro.core.fsr.messages import AckMsg, FwdData, SeqData
from repro.errors import CheckFailure
from repro.types import MessageId
from tests.conftest import run_broadcasts, small_cluster


def test_clean_run_passes_and_counts_traffic():
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    monitor = attach_wire_monitor(cluster)
    run_broadcasts(cluster, [(pid, 4, 3_000) for pid in range(5)])
    assert monitor.stats.fwd_sends > 0
    assert monitor.stats.seq_sends > 0
    assert monitor.stats.ack_sends > 0
    assert monitor.stats.violations_checked > 50


def test_clean_run_with_crash_passes():
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    attach_wire_monitor(cluster)
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(5):
            cluster.broadcast(pid, size_bytes=3_000)
    cluster.schedule_crash(0, time=0.02)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0) >= 20
            for p in range(1, 5)
        ),
        max_time_s=60,
    )


def test_t_zero_and_t_two_pass():
    for t in (0, 2):
        cluster = small_cluster(n=4, protocol_config=FSRConfig(t=t))
        attach_wire_monitor(cluster)
        run_broadcasts(cluster, [(pid, 3, 2_000) for pid in range(4)])


def _monitored_process():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    monitor = WireMonitor()
    cluster.start()
    cluster.run(until=5e-3)
    return monitor, cluster.nodes[2].protocol, cluster.nodes[0].protocol


def test_detects_premature_stability():
    monitor, standard, leader = _monitored_process()
    ring = leader.ring
    bad = SeqData(
        message_id=MessageId(origin=3, local_seq=1), origin=3, payload=None,
        payload_size=10, sequence=1, stable=True, view_id=0,
    )
    with pytest.raises(CheckFailure, match="stable SeqData"):
        monitor.inspect(leader, ring.successor(leader.me), bad)  # pos 0 < t


def test_detects_unstable_after_pt():
    monitor, standard, leader = _monitored_process()
    bad = SeqData(
        message_id=MessageId(origin=3, local_seq=1), origin=3, payload=None,
        payload_size=10, sequence=1, stable=False, view_id=0,
    )
    with pytest.raises(CheckFailure, match="unstable SeqData"):
        monitor.inspect(standard, 3, bad)  # standard is position 2 >= t


def test_detects_leader_forwarding_fwddata():
    monitor, standard, leader = _monitored_process()
    bad = FwdData(
        message_id=MessageId(origin=3, local_seq=1), origin=3, payload=None,
        payload_size=10, view_id=0,
    )
    with pytest.raises(CheckFailure, match="leader"):
        monitor.inspect(leader, 1, bad)


def test_detects_seqdata_delivered_to_origin():
    monitor, standard, leader = _monitored_process()
    # standard is process 2; its successor is 3 — sending SeqData whose
    # origin is 3 must be a conversion to ack, not a forward.
    bad = SeqData(
        message_id=MessageId(origin=3, local_seq=1), origin=3, payload=None,
        payload_size=10, sequence=1, stable=True, view_id=0,
    )
    with pytest.raises(CheckFailure, match="origin"):
        monitor.inspect(standard, 3, bad)


def test_detects_consumer_forwarding_stable_ack():
    monitor, standard, leader = _monitored_process()
    # With t = 1, the consumer is position 0 (the leader).
    from repro.core.fsr.messages import AckBatch

    bad = AckBatch(
        acks=[AckMsg(message_id=MessageId(origin=2, local_seq=1), sequence=1,
                     stable=True, view_id=0)],
        view_id=0,
    )
    with pytest.raises(CheckFailure, match="consumer"):
        monitor.inspect(leader, 1, bad)
