"""Unit tests for the shard-interleave checker.

The checker generalises the battery beyond a single sequencer stream:
a multi-ring log must fill slot ``s`` from ring ``s % shards``, keep
per-process slots strictly increasing, and map each slot to one message
cluster-wide.  Hand-built logs violating each clause must be rejected;
clean logs and single-ring logs must pass.
"""

from types import SimpleNamespace

import pytest

from repro.checker.order import check_shard_interleave
from repro.cluster.results import ExperimentResult
from repro.core.api import DeliveryLog
from repro.errors import CheckFailure
from repro.types import Delivery, MessageId


def mid(origin, local):
    return MessageId(origin=origin, local_seq=local)


def build_result(logs, shards=2, live_style=False):
    """logs: {pid: [(origin, local, seq, ring, slot), ...]}"""
    delivery_logs = {}
    time = 0.0
    for pid, entries in logs.items():
        log = DeliveryLog(process=pid)
        for origin, local, seq, ring, slot in entries:
            time += 0.001
            log.deliveries.append(Delivery(
                process=pid,
                message_id=mid(origin, local),
                sequence=seq,
                time=time,
                size_bytes=10,
                ring=ring,
                slot=slot,
            ))
        delivery_logs[pid] = log
    if live_style:
        # Live results carry the LiveClusterSpec: shards sits directly
        # on the config object, with no protocol_config attribute.
        config = SimpleNamespace(shards=shards)
    else:
        config = SimpleNamespace(
            protocol_config=SimpleNamespace(shards=shards)
        )
    return ExperimentResult(
        config=config,
        duration_s=time,
        delivery_logs=delivery_logs,
        app_deliveries={pid: [] for pid in logs},
        broadcasts=[],
        broadcast_origin={},
        crashed={},
        nic_stats={},
    )


#: A clean two-ring interleaving: slots 0,1,2 from rings 0,1,0.
CLEAN = {
    0: [(0, 1, 1, 0, 0), (1, 1, 2, 1, 1), (0, 2, 3, 0, 2)],
    1: [(0, 1, 1, 0, 0), (1, 1, 2, 1, 1), (0, 2, 3, 0, 2)],
}


def test_clean_interleaving_passes():
    check_shard_interleave(build_result(CLEAN))
    check_shard_interleave(build_result(CLEAN, live_style=True))


def test_single_ring_results_are_exempt():
    # shards=1 runs carry no ring tags; the checker must no-op.
    untagged = {
        0: [(0, 1, 1, None, None), (1, 1, 2, None, None)],
    }
    check_shard_interleave(build_result(untagged, shards=1))
    check_shard_interleave(build_result(untagged, shards=2))  # no tags at all


def test_mis_interleaved_slot_rejected():
    # Slot 1 must come from ring 1; a log filling it from ring 0 breaks
    # the deterministic interleaving rule even though the messages and
    # pairwise order are untouched.
    bad = {
        0: [(0, 1, 1, 0, 0), (1, 1, 2, 0, 1), (0, 2, 3, 0, 2)],
    }
    with pytest.raises(CheckFailure, match="interleaving rule demands"):
        check_shard_interleave(build_result(bad))


def test_untagged_delivery_in_tagged_run_rejected():
    bad = {
        0: [(0, 1, 1, 0, 0), (1, 1, 2, None, None)],
    }
    with pytest.raises(CheckFailure, match="without ring/slot tags"):
        check_shard_interleave(build_result(bad))


def test_ring_out_of_range_rejected():
    bad = {0: [(0, 1, 1, 4, 0)]}
    with pytest.raises(CheckFailure, match="shards=2"):
        check_shard_interleave(build_result(bad))


def test_non_increasing_slots_rejected():
    bad = {
        0: [(0, 1, 1, 0, 2), (1, 1, 2, 0, 2)],
    }
    with pytest.raises(CheckFailure, match="after slot"):
        check_shard_interleave(build_result(bad))


def test_conflicting_slot_assignment_across_nodes_rejected():
    # Both nodes deliver slot 0, but disagree on which message fills it.
    bad = {
        0: [(0, 1, 1, 0, 0)],
        1: [(5, 9, 1, 0, 0)],
    }
    with pytest.raises(CheckFailure, match="slot 0 maps to"):
        check_shard_interleave(build_result(bad))
