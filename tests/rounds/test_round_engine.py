"""Unit tests for the round-model engine."""

import pytest

from repro.errors import SimulationError
from repro.rounds import RoundEngine, RoundProcess


class Echo(RoundProcess):
    """Sends a counter to a destination each round; records receipts."""

    def __init__(self, pid, dst=None, broadcast_to=None):
        super().__init__(pid)
        self.dst = dst
        self.broadcast_to = broadcast_to
        self.received = []
        self.counter = 0

    def begin_round(self, round_index):
        self.counter += 1
        if self.broadcast_to is not None:
            self.send(self.broadcast_to, (self.pid, self.counter))
        elif self.dst is not None:
            self.send(self.dst, (self.pid, self.counter))

    def receive(self, round_index, src, payload):
        self.received.append((round_index, src, payload))


class Quiet(RoundProcess):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def begin_round(self, round_index):
        pass

    def receive(self, round_index, src, payload):
        self.received.append((round_index, src, payload))


def test_message_sent_in_round_r_received_end_of_round_r():
    engine = RoundEngine()
    sender = Echo(0, dst=1)
    receiver = Quiet(1)
    engine.attach(sender)
    engine.attach(receiver)
    engine.run_round()
    assert receiver.received == [(0, 0, (0, 1))]


def test_one_receive_per_round_queues_excess():
    engine = RoundEngine()
    s1, s2 = Echo(0, dst=2), Echo(1, dst=2)
    receiver = Quiet(2)
    for process in (s1, s2, receiver):
        engine.attach(process)
    engine.run_round()
    assert len(receiver.received) == 1
    # Lower sender id wins the first receive slot.
    assert receiver.received[0][1] == 0
    engine.run_round()
    # Round 1: queued message from sender 1 (round 0) precedes new ones.
    assert receiver.received[1][2] == (1, 1)


def test_broadcast_costs_one_send_slot():
    engine = RoundEngine()
    sender = Echo(0, broadcast_to=[1, 2])
    r1, r2 = Quiet(1), Quiet(2)
    for process in (sender, r1, r2):
        engine.attach(process)
    engine.run_round()
    assert r1.received and r2.received


def test_double_send_in_round_rejected():
    class DoubleSender(RoundProcess):
        def begin_round(self, round_index):
            self.send(1, "a")
            self.send(1, "b")

        def receive(self, round_index, src, payload):
            pass

    engine = RoundEngine()
    engine.attach(DoubleSender(0))
    engine.attach(Quiet(1))
    with pytest.raises(SimulationError):
        engine.run_round()


def test_queue_depth_tracked():
    engine = RoundEngine()
    for pid in range(3):
        engine.attach(Echo(pid, dst=(0 if pid else 1)))
    engine.run_rounds(10)
    assert max(engine.max_queue_depth.values()) >= 1


def test_run_until_bounds():
    engine = RoundEngine()
    engine.attach(Quiet(0))
    with pytest.raises(SimulationError):
        engine.run_until(lambda: False, max_rounds=5)


def test_duplicate_attach_rejected():
    engine = RoundEngine()
    engine.attach(Quiet(0))
    with pytest.raises(SimulationError):
        engine.attach(Quiet(0))
