"""Round-model validation of the paper's §4.3 analytical claims."""

import pytest

from repro.rounds import fsr_latency_formula, measure_latency, measure_throughput
from repro.rounds.analysis import round_factory


@pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 10])
@pytest.mark.parametrize("t", [0, 1, 2])
def test_latency_formula_exact(n, t):
    """L(i) = 2n + t - i - 1 for every sender position (paper §4.3.1)."""
    if t >= n:
        pytest.skip("t must be < n")
    factory = round_factory("fsr", t=t)
    for position in range(n):
        assert measure_latency(factory, n, position) == fsr_latency_formula(
            n, t, position
        )


def test_latency_linear_in_n():
    factory = round_factory("fsr", t=1)
    latencies = [measure_latency(factory, n, 1) for n in (3, 5, 7, 9)]
    diffs = [b - a for a, b in zip(latencies, latencies[1:])]
    assert diffs == [4, 4, 4]  # slope 2 per added process


def test_latency_linear_in_t():
    latencies = [
        measure_latency(round_factory("fsr", t=t), 8, 5) for t in (0, 1, 2, 3)
    ]
    diffs = [b - a for a, b in zip(latencies, latencies[1:])]
    assert diffs == [1, 1, 1]


@pytest.mark.parametrize("n,t,k", [
    (5, 1, 1), (5, 1, 2), (5, 1, 3), (5, 1, 4),
    (8, 2, 1), (8, 2, 4), (10, 1, 5), (4, 0, 2),
])
def test_throughput_at_least_one(n, t, k):
    """Throughput >= 1 regardless of n, t, k (paper §4.3.2)."""
    result = measure_throughput(
        round_factory("fsr", t=t), n, k, warmup_rounds=300, window_rounds=1500
    )
    assert result.throughput >= 0.999


def test_throughput_independent_of_n():
    values = [
        measure_throughput(round_factory("fsr", t=1), n, 1).throughput
        for n in (3, 6, 10)
    ]
    assert max(values) - min(values) < 0.01


def test_throughput_independent_of_t():
    values = [
        measure_throughput(round_factory("fsr", t=t), 8, 2).throughput
        for t in (0, 1, 2, 3)
    ]
    assert max(values) - min(values) < 0.01


def test_round_model_total_order():
    """All processes deliver identical sequences in the round model."""
    result = measure_throughput(round_factory("fsr", t=1), 5, 3,
                                warmup_rounds=100, window_rounds=400)
    logs = list(result.delivered.values())
    shortest = min(len(log) for log in logs)
    assert shortest > 100
    reference = logs[0][:shortest]
    for log in logs[1:]:
        assert log[:shortest] == reference


def test_fairness_in_round_model():
    """With k senders, delivered counts per origin are balanced."""
    result = measure_throughput(round_factory("fsr", t=1), 6, 3,
                                warmup_rounds=200, window_rounds=1200)
    log = result.delivered[0]
    counts = {}
    for origin, _ in log:
        counts[origin] = counts.get(origin, 0) + 1
    values = sorted(counts.values())
    assert len(values) == 3
    assert values[-1] - values[0] <= max(3, values[-1] * 0.1)


def test_unfair_scheduler_starves_far_senders():
    """Ablation: disabling the forward-list rule lets the sender closest
    to its successor chain dominate."""
    fair = measure_throughput(
        round_factory("fsr", t=1, fairness=True), 6, 2,
        warmup_rounds=200, window_rounds=800,
    )
    unfair = measure_throughput(
        round_factory("fsr", t=1, fairness=False), 6, 2,
        warmup_rounds=200, window_rounds=800,
    )

    def spread(result):
        counts = {}
        for origin, _ in result.delivered[0]:
            counts[origin] = counts.get(origin, 0) + 1
        values = sorted(counts.values())
        if len(values) < 2:
            return 1.0  # one sender delivered nothing at all: max unfair
        return 1.0 - values[0] / values[-1]

    assert spread(unfair) > spread(fair)
