"""The paper's throughput-efficiency criterion as a one-call helper."""

import pytest

from repro.rounds.analysis import is_throughput_efficient


def test_fsr_is_efficient_everywhere():
    for k in (1, 2, 5):
        assert is_throughput_efficient("fsr", 5, k, t=1)


def test_paper_section2_claims_as_a_table():
    """§2's qualitative table, checked mechanically: FSR is the only
    class efficient across all sender patterns."""
    claims = {
        # protocol: (k=1, k=2, k=n)
        "fixed_sequencer": (False, False, False),
        "moving_sequencer": (False, False, False),
        "privilege": (False, False, False),
        "communication_history": (False, False, True),
        "destination_agreement": (False, False, False),
    }
    n = 6
    for name, expected in claims.items():
        measured = tuple(
            is_throughput_efficient(name, n, k) for k in (1, 2, n)
        )
        assert measured == expected, (name, measured)
    assert all(is_throughput_efficient("fsr", n, k, t=1) for k in (1, 2, n))
