"""Golden single-broadcast latencies of every round automaton.

The FSR value is the paper's closed form.  The baseline values are
pinned measurements: they follow from each automaton's message pattern
and the round model's one-send/one-receive costs, and any change to
them changes what Section 2's comparison *means* — so drift fails
loudly here.  (Setting: n = 5, sender at position 1, idle system.)
"""

import pytest

from repro.rounds import fsr_latency_formula, measure_latency
from repro.rounds.analysis import round_factory


def _latency(name, **kwargs):
    factory = round_factory(name, **kwargs)
    return measure_latency(factory, 5, 1)


def test_fsr_matches_paper_formula():
    assert _latency("fsr", t=1) == fsr_latency_formula(5, 1, 1) == 9


def test_fixed_sequencer_golden():
    # submit (1) + sequenced broadcast (1) + the sequencer absorbing the
    # n-1 acks through its single receive slot + a stability notice.
    assert _latency("fixed_sequencer") == 7


def test_moving_sequencer_golden():
    # data broadcast, token-holder announcement, and the aru evidence
    # needed before min(aru) covers the message.
    assert _latency("moving_sequencer") == 6


def test_privilege_golden():
    # the token must first travel from p0 to the sender, then the data
    # broadcast plus an aru rotation establish uniform delivery.
    assert _latency("privilege") == 10


def test_communication_history_golden():
    # senders emit once every n-1 rounds; delivery waits for a later
    # timestamp from every other process (their next null slots).
    assert _latency("communication_history") == 8


def test_destination_agreement_golden():
    # data broadcast + propose + the coordinator absorbing votes one
    # per round + decide.
    assert _latency("destination_agreement") == 7


def test_fsr_has_no_latency_penalty_for_its_throughput():
    """FSR's contention-free latency is in the same band as the
    baselines' despite its throughput dominance — the paper's 'linear
    latency' selling point in comparative form."""
    fsr = _latency("fsr", t=1)
    others = [
        _latency("fixed_sequencer"),
        _latency("moving_sequencer"),
        _latency("privilege"),
        _latency("communication_history"),
        _latency("destination_agreement"),
    ]
    assert fsr <= 2 * min(others)
    assert fsr <= max(others) + 2
