"""Round-model validation of the paper's Section 2 per-class claims."""

import pytest

from repro.rounds.analysis import (
    ROUND_PROTOCOLS,
    measure_latency,
    measure_throughput,
    round_factory,
)

BASELINES = [
    "fixed_sequencer",
    "moving_sequencer",
    "privilege",
    "communication_history",
    "destination_agreement",
]


@pytest.mark.parametrize("name", BASELINES)
def test_baselines_deliver_total_order(name):
    result = measure_throughput(round_factory(name), 4, 2,
                                warmup_rounds=200, window_rounds=600)
    logs = list(result.delivered.values())
    shortest = min(len(log) for log in logs)
    assert shortest > 10
    reference = logs[0][:shortest]
    for log in logs[1:]:
        assert log[:shortest] == reference


@pytest.mark.parametrize("name", BASELINES)
def test_baselines_complete_single_broadcast(name):
    assert measure_latency(round_factory(name), 4, 1, max_rounds=500) > 0


def test_fixed_sequencer_throughput_poor_and_degrading():
    """§2.1: the sequencer's receive slot caps throughput ~1/(n-1)."""
    t5 = measure_throughput(round_factory("fixed_sequencer"), 5, 1).throughput
    t9 = measure_throughput(round_factory("fixed_sequencer"), 9, 1).throughput
    assert t5 < 0.5
    assert t9 < t5  # degrades with n


def test_moving_sequencer_below_one():
    """§2.2 / Figure 2: at most one delivery every two rounds."""
    for k in (1, 2, 5):
        result = measure_throughput(round_factory("moving_sequencer"), 5, k)
        assert result.throughput <= 0.6


def test_privilege_fairness_throughput_tradeoff():
    """§2.3: small quota = fair but slow; senders at opposite ends."""
    result = measure_throughput(round_factory("privilege"), 6, 2,
                                warmup_rounds=200, window_rounds=1000)
    assert result.throughput < 1.0  # token travel wastes rounds


def test_communication_history_poor_below_all_to_all():
    """§2.4: quadratic messages force 1/(n-1) throttling per sender."""
    result = measure_throughput(round_factory("communication_history"), 5, 1)
    assert result.throughput == pytest.approx(0.25, abs=0.02)


def test_destination_agreement_below_one():
    """§2.5: consensus control waves tax every batch."""
    result = measure_throughput(round_factory("destination_agreement"), 5, 2)
    assert result.throughput < 1.0


def test_fsr_beats_every_baseline_at_k2():
    """The paper's headline: only FSR is throughput-efficient in
    k-to-n patterns."""
    fsr = measure_throughput(round_factory("fsr", t=1), 6, 2).throughput
    assert fsr >= 0.999
    for name in BASELINES:
        baseline = measure_throughput(round_factory(name), 6, 2).throughput
        assert baseline < fsr, f"{name} unexpectedly matched FSR"


def test_round_registry_contents():
    assert set(ROUND_PROTOCOLS) == {
        "fsr", "fixed_sequencer", "moving_sequencer", "privilege",
        "communication_history", "destination_agreement",
    }


def test_round_factory_rejects_unknown():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        round_factory("nope")
    with pytest.raises(ConfigurationError):
        round_factory("privilege", t=1)
