"""Deterministic cost-regression guards.

Wall-clock performance tests flake; the simulator's *event count* for a
fixed scenario is deterministic, so pinning loose upper bounds catches
accidental event explosions (busy-wait loops, timer leaks, unbatched
retries) without any flakiness.
"""

import pytest

from repro.core.fsr import FSRConfig
from tests.conftest import run_broadcasts, small_cluster


def test_fsr_event_budget_per_message():
    n, per = 5, 10
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=1))
    run_broadcasts(cluster, [(pid, per, 5_000) for pid in range(n)])
    per_message = cluster.sim.events_processed / (n * per)
    # Each message: ~n-1 data hops x (tx, arrival, rx, cpu, tx-done) +
    # marshal + ack traffic. Empirically ~60; 120 flags an explosion.
    assert per_message < 120, per_message


def test_idle_cluster_is_quiet():
    """An FSR cluster with no traffic schedules (almost) nothing —
    no polling loops, no gratuitous timers."""
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=1.0)
    baseline = cluster.sim.events_processed
    cluster.run(until=10.0)
    # Oracle detector mode: a truly idle system processes no events.
    assert cluster.sim.events_processed == baseline


def test_heartbeat_idle_cost_is_linear_not_quadratic_in_time():
    cluster = small_cluster(n=4, detector="heartbeat")
    cluster.start()
    cluster.run(until=1.0)
    first = cluster.sim.events_processed
    cluster.run(until=2.0)
    second = cluster.sim.events_processed - first
    assert second <= first * 1.2  # steady heartbeat rate


def test_token_protocols_idle_cost_bounded():
    """Idle token circulation is rate-limited by the hold timer."""
    for protocol in ("moving_sequencer", "privilege"):
        cluster = small_cluster(n=4, protocol=protocol, protocol_config=None)
        cluster.start()
        cluster.run(until=1.0)
        events_per_second = cluster.sim.events_processed
        # 1 ms idle-hold -> ~1 000 token events/s x handful of events
        # each; 40 000 flags a spin.
        assert events_per_second < 40_000, (protocol, events_per_second)


def test_crash_recovery_event_budget():
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(5):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.schedule_crash(0, time=0.02)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0) >= 20
            for p in range(1, 5)
        ),
        max_time_s=60,
    )
    # Recovery must not multiply the per-message event cost wildly.
    assert cluster.sim.events_processed < 25 * 120 * 3
