"""Integration tests: crashes under the paper-scale configuration."""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import (
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
)


def _crash_run(n, t, victims, per_sender=8, size=50_000, detector="oracle"):
    cluster = build_cluster(
        ClusterConfig(
            n=n, protocol="fsr", protocol_config=FSRConfig(t=t),
            detector=detector,
        )
    )
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(n):
        for _ in range(per_sender):
            cluster.broadcast(pid, size_bytes=size)
    for victim, at in victims:
        cluster.schedule_crash(victim, time=at)
    crashed = {v for v, _ in victims}
    survivors = [p for p in range(n) if p not in crashed]
    expected = per_sender * (n - len(crashed))
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin not in crashed)
            >= expected
            for p in survivors
        ),
        step_s=0.05,
        max_time_s=300.0,
    )
    cluster.run(until=cluster.sim.now + 0.1)
    return cluster.results()


def _assert_safe(result):
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_uniformity(result)


def test_leader_crash_at_full_load():
    result = _crash_run(5, 1, [(0, 0.5)])
    _assert_safe(result)


def test_two_crashes_with_t2():
    result = _crash_run(6, 2, [(0, 0.4), (3, 0.8)])
    _assert_safe(result)


def test_crash_during_view_change_window():
    """Second crash lands right in the middle of the first flush."""
    result = _crash_run(6, 2, [(1, 0.4), (2, 0.403)])
    _assert_safe(result)


def test_heartbeat_detector_failover():
    """The full stack also works without the oracle detector."""
    result = _crash_run(
        4, 1, [(2, 0.5)], per_sender=5, size=20_000, detector="heartbeat"
    )
    _assert_safe(result)


def test_throughput_recovers_after_crash():
    """After the view change, survivors keep delivering at full rate."""
    result = _crash_run(5, 1, [(4, 0.3)], per_sender=12)
    _assert_safe(result)
    # Deliveries continue well past the crash.
    last_delivery = max(
        d.time for p in (0, 1, 2, 3) for d in result.delivery_logs[p].deliveries
    )
    assert last_delivery > 0.4
    post_crash = [
        d
        for d in result.delivery_logs[0].deliveries
        if d.time > 0.5
    ]
    assert len(post_crash) > 10
