"""Integration tests: lossy networks (ARQ) and dynamic membership."""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_all, check_integrity, check_total_order
from repro.net import NetworkParams


def test_fsr_on_lossy_network():
    """Channel ARQ hides loss; FSR sees reliable FIFO links."""
    params = NetworkParams(
        cpu_per_message_s=20e-6,
        cpu_per_byte_s=5e-9,
        loss_rate=0.05,
        retransmit_timeout_s=5e-3,
    )
    cluster = build_cluster(
        ClusterConfig(
            n=4, protocol="fsr", protocol_config=FSRConfig(t=1),
            network=params, seed=3,
        )
    )
    cluster.start()
    cluster.run(until=0.02)
    for pid in range(4):
        for _ in range(6):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(24), max_time_s=120)
    result = cluster.results()
    check_all(result)
    lost = sum(stats.messages_lost for stats in result.nic_stats.values())
    assert lost > 0, "the run was supposed to exercise retransmission"


def test_graceful_leave_mid_stream():
    cluster = build_cluster(
        ClusterConfig(n=5, protocol="fsr", protocol_config=FSRConfig(t=1),
                      network=NetworkParams(cpu_per_message_s=20e-6,
                                            cpu_per_byte_s=5e-9))
    )
    cluster.start()
    cluster.run(until=0.02)
    for pid in range(5):
        for _ in range(4):
            cluster.broadcast(pid, size_bytes=5_000)
    # Process 4 politely leaves once its messages are in flight.
    cluster.sim.schedule(0.03, cluster.nodes[4].membership.request_leave)
    survivors = (0, 1, 2, 3)
    cluster.run_until(
        lambda: all(
            len(cluster.nodes[p].app_deliveries) >= 16 for p in survivors
        ),
        max_time_s=120,
    )
    # The leave-triggered view change may still be in flight; wait for
    # it to land before inspecting membership.
    cluster.run_until(
        lambda: 4 not in cluster.nodes[0].protocol.view.members,
        max_time_s=120,
    )
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    final_view = cluster.nodes[0].protocol.view
    assert final_view is not None and 4 not in final_view.members


def test_leader_rotation_via_leave_join():
    """The paper's §4.3.1 note: rotating the leader by a leave+join."""
    cluster = build_cluster(
        ClusterConfig(n=4, protocol="fsr", protocol_config=FSRConfig(t=1),
                      network=NetworkParams(cpu_per_message_s=20e-6,
                                            cpu_per_byte_s=5e-9))
    )
    cluster.start()
    cluster.run(until=0.02)
    assert cluster.nodes[0].protocol.ring.leader == 0

    # The leader leaves and immediately rejoins at the ring's tail.
    cluster.sim.schedule(0.03, cluster.nodes[0].membership.request_leave)
    cluster.run(until=0.1)
    view_after_leave = cluster.nodes[1].protocol.view
    assert view_after_leave.members == (1, 2, 3)
    assert cluster.nodes[1].protocol.ring.leader == 1

    # Note: the harness's node 0 stopped with the leave; a production
    # deployment would restart the process before rejoining.  Verify the
    # remaining group still makes progress under the rotated leader.
    for pid in (1, 2, 3):
        cluster.broadcast(pid, size_bytes=2_000)
    cluster.run_until(
        lambda: all(len(cluster.nodes[p].app_deliveries) >= 3 for p in (1, 2, 3)),
        max_time_s=60,
    )
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
