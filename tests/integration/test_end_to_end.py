"""Full-stack integration tests on realistic (paper-scale) parameters."""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_all
from repro.metrics import collect_metrics
from repro.workloads import KToNPattern, ThrottledPattern, run_workload


def test_paper_setup_throughput_close_to_79():
    """Figure 8's headline number on the default calibrated network."""
    cluster = build_cluster(
        ClusterConfig(n=5, protocol="fsr", protocol_config=FSRConfig(t=1))
    )
    outcome = run_workload(cluster, KToNPattern.n_to_n(5, 25))
    check_all(outcome.result)
    metrics = collect_metrics(outcome)
    assert 74 < metrics.completion_throughput_mbps < 85


def test_throughput_independent_of_sender_count():
    """Figure 9's shape: k-to-5 throughput flat in k."""
    values = []
    for k in (1, 3, 5):
        cluster = build_cluster(
            ClusterConfig(n=5, protocol="fsr", protocol_config=FSRConfig(t=1))
        )
        # Long enough runs to amortise the pipeline fill (the paper's
        # runs are long for the same reason).
        outcome = run_workload(
            cluster, KToNPattern.k_to_n(k, 5, 180 // k), max_time_s=900.0
        )
        values.append(collect_metrics(outcome).completion_throughput_mbps)
    assert max(values) - min(values) < 0.07 * max(values)


def test_latency_linear_in_cluster_size():
    """Figure 6's shape: contention-free latency grows linearly."""
    from repro.metrics import latency_of_message

    latencies = []
    for n in (3, 6, 9):
        cluster = build_cluster(
            ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=1))
        )
        cluster.start()
        cluster.run(until=0.05)
        mid = cluster.broadcast(1, size_bytes=100_000)
        cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=30)
        result = cluster.results()
        completion = result.completion_time(mid)
        latencies.append(completion - 0.05)
    d1 = latencies[1] - latencies[0]
    d2 = latencies[2] - latencies[1]
    assert d1 > 0 and d2 > 0
    assert d2 == pytest.approx(d1, rel=0.15)  # linear growth


def test_latency_flat_until_saturation():
    """Figure 7's shape: latency roughly constant below capacity."""
    from repro.metrics import collect_metrics

    means = {}
    for load in (20e6, 60e6):
        cluster = build_cluster(
            ClusterConfig(n=5, protocol="fsr", protocol_config=FSRConfig(t=1))
        )
        outcome = run_workload(
            cluster,
            ThrottledPattern(
                senders=tuple(range(5)), messages_per_sender=15,
                offered_load_bps=load,
            ),
        )
        means[load] = collect_metrics(outcome).mean_latency_s
    # Tripling sub-saturation load must not triple latency.
    assert means[60e6] < means[20e6] * 2


def test_gigabit_preset_runs():
    from repro.net import NetworkParams

    cluster = build_cluster(
        ClusterConfig(
            n=4, protocol="fsr", protocol_config=FSRConfig(t=1),
            network=NetworkParams.gigabit(),
        )
    )
    outcome = run_workload(cluster, KToNPattern.n_to_n(4, 10))
    check_all(outcome.result)
    metrics = collect_metrics(outcome)
    # Gigabit links and faster hosts: way beyond Fast Ethernet numbers.
    assert metrics.completion_throughput_mbps > 150
