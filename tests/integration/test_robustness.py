"""Robustness: finite switch buffers, heartbeat FD under load, strict
determinism, and batching composed with replication."""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_all
from repro.core.api import BroadcastListener
from repro.core.batching import BatchingBroadcast
from repro.metrics import result_to_json
from repro.net import Network, NetworkParams
from repro.sim import Simulator
from repro.smr import Command, KVStore, ReplicatedStateMachine
from tests.conftest import run_broadcasts, small_cluster


def test_drop_tail_counts_and_arq_recovers():
    """A tiny switch buffer forces drops; the channel ARQ hides them."""
    params = NetworkParams(
        cpu_per_message_s=20e-6,
        cpu_per_byte_s=5e-9,
        switch_buffer_messages=2,
        loss_rate=1e-9,           # enables ARQ without random loss
        retransmit_timeout_s=3e-3,
    )
    cluster = small_cluster(n=4, network=params, seed=2)
    # Saturating blast creates transient fan-in at the sequencer hop.
    result = run_broadcasts(
        cluster, [(pid, 8, 20_000) for pid in range(4)], max_time_s=120
    )
    check_all(result)


def test_drop_tail_without_arq_loses_messages():
    """Sanity of the model itself: with a full buffer and no ARQ, raw
    arrivals are discarded and counted."""
    params = NetworkParams(
        cpu_per_message_s=5e-3,  # slow consumer
        cpu_per_byte_s=0.0,
        switch_buffer_messages=1,
    )
    sim = Simulator()
    net = Network(sim, params)
    a, b, c = net.attach(0), net.attach(1), net.attach(2)
    got = []
    c.on_receive(lambda src, msg: got.append(msg))
    for i in range(10):
        a.send(2, b"x" * 50_000)
        b.send(2, b"y" * 50_000)
    sim.run()
    stats = net.stats_of(2)
    assert stats.messages_dropped > 0
    assert len(got) + stats.messages_dropped == 20


def test_heartbeat_detector_quiet_under_saturation():
    """Full-load FSR with the heartbeat detector: no false suspicions
    (the RX/CPU paths must not delay heartbeats past the timeout)."""
    cluster = build_cluster(
        ClusterConfig(
            n=4, protocol="fsr", protocol_config=FSRConfig(t=1),
            detector="heartbeat",
            heartbeat_interval_s=10e-3,
            heartbeat_timeout_s=150e-3,
        )
    )
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(4):
        for _ in range(20):
            cluster.broadcast(pid, size_bytes=100_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(80), max_time_s=600)
    for node in cluster.nodes.values():
        assert node.detector.suspected() == set()
    assert cluster.nodes[0].protocol.view.view_id == 0  # no spurious flushes
    check_all(cluster.results())


def test_bitwise_determinism_across_runs():
    """Same seed, same schedule: byte-identical exported results —
    including crash recovery and jitter."""
    def run():
        params = NetworkParams(
            cpu_per_message_s=20e-6, cpu_per_byte_s=5e-9,
            propagation_jitter_s=1e-3,
        )
        cluster = small_cluster(n=4, network=params, seed=77)
        cluster.start()
        cluster.run(until=5e-3)
        for pid in range(4):
            for _ in range(5):
                cluster.broadcast(pid, size_bytes=4_000)
        cluster.schedule_crash(0, time=0.02)
        cluster.run_until(
            lambda: all(
                sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0)
                >= 15
                for p in (1, 2, 3)
            ),
            max_time_s=60,
        )
        cluster.run(until=cluster.sim.now + 0.01)
        return result_to_json(cluster.results())

    assert run() == run()


def test_batched_replicated_kv():
    """Packing composes with replication: many tiny commands, one
    identical state everywhere."""
    cluster = small_cluster(n=3)
    replicas = {}
    for pid, node in cluster.nodes.items():
        wrapper = BatchingBroadcast(cluster.sim, node.protocol, origin=pid)
        replicas[pid] = ReplicatedStateMachine(wrapper, KVStore())
    cluster.start()
    cluster.run(until=5e-3)
    for i in range(50):
        replicas[i % 3].submit(Command("incr", (f"k{i % 5}", 1)))
    for pid, node in cluster.nodes.items():
        # Flush through the protocol reference kept by the replica.
        replicas[pid].broadcast.flush()
    cluster.run_until(
        lambda: all(r.applied_count >= 50 for r in replicas.values()),
        max_time_s=60,
    )
    snapshots = [replicas[p].snapshot() for p in range(3)]
    assert all(s == snapshots[0] for s in snapshots)
    assert sum(snapshots[0].values()) == 50
