"""Regression pins for bugs found by the chaos campaign (PR 1).

The first 200-seed campaign went red on two seeds, both exposing the
same root hole: view installs carrying recovered state were applied (and
delivered from) unilaterally, so a crash at the wrong instant could
erase the only copies of delivered messages or replay a stale install
over a newer flush.  The fix is the two-phase view install — install,
install-ack, commit — with recovery deliveries deferred to the commit
and stale (lower-epoch) installs rejected outright.

Each schedule below is the shrinker's minimal reproducer, pinned
verbatim from the red campaign report.  Both were 2-event reproducers;
both must now replay green, and the mechanics tests assert the specific
protocol behaviour that closes each hole (so a regression fails loudly
even if the oracle's coverage ever narrows).
"""

from repro.chaos import CampaignConfig, FaultSchedule, apply_schedule, run_schedule
from repro.cluster import ClusterConfig, build_cluster
from repro.core.fsr import FSRConfig

# Seed 103: leader p0 crashes, the view-1 coordinator p1 crashes right
# after sending installs to only part of the membership (large
# state-carrying installs serialise over the sender's TX link).  Before
# the fix, the members that did install delivered eagerly, dropped
# retention, and jumped their GC cursor — so the epoch-2 merge found
# delivered sequences retained by nobody ("unrecoverable sequence").
SEED_103 = FaultSchedule.from_dict({
    "scenario": "repeated_leader_crash", "seed": 103,
    "n": 6, "t": 2, "detector": "oracle",
    "events": [
        {"kind": "crash", "time": 0.068, "process": 0, "note": "leader_of_view_0"},
        {"kind": "crash", "time": 0.116, "process": 1, "note": "leader_of_view_1"},
    ],
})

# Seed 186: an epoch-1 install was still in flight when its coordinator
# crashed; the receiver had meanwhile pledged its state to the epoch-2
# flush.  Before the fix it applied the stale install anyway, delivering
# past the state it had acked — the epoch-2 view then tried to rewind
# its hold-back queue ("cannot rewind hold-back queue").
SEED_186 = FaultSchedule.from_dict({
    "scenario": "role_targeted", "seed": 186,
    "n": 6, "t": 2, "detector": "oracle",
    "events": [
        {"kind": "crash", "time": 0.06, "process": 2, "note": "last_backup"},
        {"kind": "crash", "time": 0.14, "process": 0, "note": "leader"},
    ],
})

CONFIG = CampaignConfig()


def _traced_run(schedule):
    cluster = build_cluster(ClusterConfig(
        n=schedule.n, protocol="fsr", protocol_config=FSRConfig(t=schedule.t),
        network=CONFIG.network_params(schedule), seed=schedule.seed,
        detector="oracle", detection_delay_s=CONFIG.detection_delay_s,
        trace=True,
    ))
    cluster.start()
    apply_schedule(cluster, schedule)
    cluster.run(until=CONFIG.settle_s)
    for pid in range(schedule.n):
        for _ in range(CONFIG.per_sender):
            cluster.broadcast(pid, size_bytes=CONFIG.message_bytes)
    cluster.run(until=0.8)
    return cluster


def test_seed_103_partial_install_then_coordinator_crash_is_green():
    verdict, _ = run_schedule(SEED_103, CONFIG)
    assert verdict.ok, verdict.summary()


def test_seed_186_stale_install_after_new_flush_is_green():
    verdict, _ = run_schedule(SEED_186, CONFIG)
    assert verdict.ok, verdict.summary()


def test_recovery_deliveries_wait_for_the_view_commit():
    """Seed 103 mechanics: no member releases recovered deliveries
    before it has seen the commit for that view, so a coordinator crash
    mid-install leaves retention (and the next merge) intact."""
    cluster = _traced_run(SEED_103)
    commits = cluster.trace.records("fsr", "recovery_commit")
    assert commits, "no recovery commit — the fix's path never ran"
    committed_at = {}
    for r in commits:
        key = (r.detail["me"], r.detail["view_id"])
        committed_at.setdefault(key, r.time)
    # Every commit that released messages happened at-or-after the
    # matching membership-layer view_committed event of that member.
    vsc_commits = {
        (r.detail["me"], r.detail["view_id"]): r.time
        for r in cluster.trace.records("vsc", "view_committed")
    }
    for key, t in committed_at.items():
        assert key in vsc_commits
        assert t >= vsc_commits[key]


def test_stale_install_is_rejected():
    """Seed 186 mechanics: a member that contributed its state to a
    newer flush refuses the older view's late-arriving install instead
    of delivering past what it pledged."""
    cluster = _traced_run(SEED_186)
    stale = cluster.trace.records("vsc", "install_stale")
    assert stale, "the in-flight stale install was never rejected"
    for r in stale:
        assert r.detail["epoch"] < r.detail["highest"]
