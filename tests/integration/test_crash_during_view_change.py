"""Compound recovery: the flush coordinator crashes mid-flush, then the
next coordinator crashes before any view installs.

This is the deepest corner of the view-synchronous recovery path: two
back-to-back coordinator hand-offs with retained state merged across
three flush attempts.  The schedule is written in the shrinker's
minimal-reproducer format (``FaultSchedule.from_dict``) so red campaign
seeds can be regression-pinned here verbatim.

Timeline (verified against the vsc trace, detection delay 20 ms):

* 0.080  p5 crashes — the trigger
* 0.100  coordinator p0 starts the epoch-1 flush
* 0.102  p0 crashes mid-flush
* 0.122  coordinator p1 starts the epoch-2 flush
* 0.125  p1 crashes before any new view installs
* ~0.159 coordinator p2 completes recovery, installs view (2,3,4,6)
"""

import pytest

from repro.chaos import CampaignConfig, FaultSchedule, apply_schedule, run_schedule
from repro.checker.order import check_total_order, check_uniformity
from repro.cluster import ClusterConfig, build_cluster
from repro.core.fsr import FSRConfig

SCHEDULE = FaultSchedule.from_dict({
    "scenario": "view_change_crossfire", "seed": 0,
    "n": 7, "t": 3, "detector": "oracle",
    "events": [
        {"kind": "crash", "time": 0.08, "process": 5, "note": "trigger"},
        {"kind": "crash", "time": 0.102, "process": 0,
         "note": "coordinator_mid_flush"},
        {"kind": "crash", "time": 0.125, "process": 1,
         "note": "backup_before_install"},
    ],
})

CONFIG = CampaignConfig(n=7, t=3)


def test_uniform_total_order_survives_double_coordinator_crash():
    verdict, result = run_schedule(SCHEDULE, CONFIG)
    assert verdict.ok, verdict.summary()
    assert set(result.crashed) == {0, 1, 5}
    check_total_order(result)
    check_uniformity(result)
    # All four survivors converged on the same post-recovery view.
    for process in (2, 3, 4, 6):
        deliveries = result.delivery_logs[process].deliveries
        assert deliveries, f"survivor {process} delivered nothing"


def test_crashes_actually_interrupt_two_flushes():
    """The schedule's premise: both doomed coordinators start (and never
    finish) a flush, and no view installs until the third attempt."""
    cluster = build_cluster(ClusterConfig(
        n=7, protocol="fsr", protocol_config=FSRConfig(t=3),
        network=CONFIG.network_params(SCHEDULE), seed=0, detector="oracle",
        detection_delay_s=CONFIG.detection_delay_s, trace=True,
    ))
    cluster.start()
    apply_schedule(cluster, SCHEDULE)
    cluster.run(until=CONFIG.settle_s)
    for pid in range(7):
        for _ in range(CONFIG.per_sender):
            cluster.broadcast(pid, size_bytes=CONFIG.message_bytes)
    cluster.run(until=0.6)

    flush_starts = [
        (r.time, r.detail["me"]) for r in cluster.trace.records("vsc", "flush_start")
    ]
    coordinators = [me for _, me in flush_starts]
    # p0 and p1 each began a flush before dying; p2 finished the job.
    assert coordinators[:2] == [0, 1]
    assert 2 in coordinators

    installs = [
        r for r in cluster.trace.records("vsc", "view_installed") if r.time > 0
    ]
    # No view installed while the doomed coordinators were flushing.
    assert min(r.time for r in installs) > 0.125
    final_members = installs[-1].detail["members"]
    assert tuple(final_members) == (2, 3, 4, 6)


@pytest.mark.parametrize("shift_ms", [-4.0, 4.0])
def test_nearby_timings_also_survive(shift_ms):
    """The invariant holds in a neighbourhood of the crafted timing, not
    just at one lucky instant."""
    shifted = FaultSchedule.from_dict({
        **SCHEDULE.to_dict(),
        "events": [
            {**e.to_dict(), "time": round(e.time + shift_ms * 1e-3, 4)}
            for e in SCHEDULE.events
        ],
    })
    verdict, _ = run_schedule(shifted, CONFIG)
    assert verdict.ok, verdict.summary()
