"""The simulator is held to the closed-form model (repro.analysis)."""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.analysis import (
    ThroughputPrediction,
    fixed_sequencer_max_throughput_bps,
    fsr_contention_free_latency_s,
    fsr_max_throughput_bps,
    raw_goodput_bps,
)
from repro.metrics import collect_metrics
from repro.net import NetworkParams
from repro.workloads import KToNPattern, run_workload


PARAMS = NetworkParams.fast_ethernet()


def test_predictions_land_on_paper_numbers():
    prediction = ThroughputPrediction.for_paper_setup(PARAMS)
    assert prediction.raw_mbps == pytest.approx(94.15, abs=0.3)
    assert prediction.fsr_mbps == pytest.approx(79, abs=1.5)
    assert prediction.fixed_sequencer_mbps < 0.35 * prediction.fsr_mbps


def test_des_matches_fsr_throughput_prediction():
    predicted = fsr_max_throughput_bps(PARAMS, 100_000) / 1e6
    cluster = build_cluster(ClusterConfig(n=5, protocol="fsr"))
    outcome = run_workload(cluster, KToNPattern.n_to_n(5, 30))
    measured = collect_metrics(outcome).completion_throughput_mbps
    assert measured == pytest.approx(predicted, rel=0.03)


def test_des_matches_fsr_throughput_prediction_other_size():
    predicted = fsr_max_throughput_bps(PARAMS, 20_000, n=4, t=1) / 1e6
    cluster = build_cluster(ClusterConfig(n=4, protocol="fsr"))
    # Long run: pipeline-fill time must be negligible for the
    # steady-state formula to be the right comparison.
    outcome = run_workload(
        cluster, KToNPattern.n_to_n(4, 200, message_bytes=20_000),
        max_time_s=900.0,
    )
    measured = collect_metrics(outcome).completion_throughput_mbps
    assert measured == pytest.approx(predicted, rel=0.05)


@pytest.mark.parametrize("n,position", [(3, 1), (5, 2), (8, 5), (10, 1)])
def test_des_matches_latency_prediction(n, position):
    predicted = fsr_contention_free_latency_s(PARAMS, n, 1, position, 100_000)
    cluster = build_cluster(
        ClusterConfig(n=n, protocol="fsr", protocol_config=FSRConfig(t=1))
    )
    cluster.start()
    cluster.run(until=0.05)
    mid = cluster.broadcast(position, size_bytes=100_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=30)
    measured = cluster.results().completion_time(mid) - 0.05
    assert measured == pytest.approx(predicted, rel=0.05)


def test_des_matches_fixed_sequencer_collapse():
    for n in (5, 8):
        predicted = fixed_sequencer_max_throughput_bps(PARAMS, n, 100_000) / 1e6
        cluster = build_cluster(ClusterConfig(n=n, protocol="fixed_sequencer"))
        outcome = run_workload(
            cluster, KToNPattern.n_to_n(n, max(1, 60 // n)), max_time_s=900
        )
        measured = collect_metrics(outcome).completion_throughput_mbps
        assert measured == pytest.approx(predicted, rel=0.15)


def test_raw_goodput_prediction_matches_network():
    from repro.net.network import Network
    from repro.sim import Simulator

    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    sim = Simulator()
    net = Network(sim, params)
    sender, receiver = net.attach(0), net.attach(1)
    seen = []
    receiver.on_receive(lambda src, msg: seen.append(sim.now))
    for _ in range(100):
        sender.send(1, b"", size_bytes=100_000)
    sim.run()
    measured = 100 * 100_000 * 8 / seen[-1]
    assert measured == pytest.approx(raw_goodput_bps(params), rel=0.01)
