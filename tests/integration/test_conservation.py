"""System-wide conservation invariants over full runs.

Whatever the protocol or failure schedule, the network cannot create
or destroy messages: every message received was transmitted, byte
accounting balances, and delivery counts reconcile with broadcasts.
"""

import pytest

from repro.core.fsr import FSRConfig
from tests.conftest import run_broadcasts, small_cluster


@pytest.mark.parametrize("protocol", [
    "fsr", "fixed_sequencer", "moving_sequencer",
    "communication_history", "destination_agreement",
])
def test_message_conservation_failure_free(protocol):
    cluster = small_cluster(n=4, protocol=protocol, protocol_config=None)
    result = run_broadcasts(cluster, [(pid, 4, 2_000) for pid in range(4)])
    total_tx = sum(s.messages_tx for s in result.nic_stats.values())
    total_rx = sum(s.messages_rx for s in result.nic_stats.values())
    total_lost = sum(s.messages_lost for s in result.nic_stats.values())
    assert total_lost == 0
    # In-flight-at-end messages are possible for token protocols, so
    # received <= transmitted, and nothing else leaks.
    assert total_rx <= total_tx
    assert total_tx - total_rx <= 2  # at most a token/ack in flight


def test_byte_accounting_balances_for_fsr():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(pid, 5, 10_000) for pid in range(4)])
    for pid, stats in result.nic_stats.items():
        assert stats.wire_bytes_tx >= stats.bytes_tx
        assert stats.wire_bytes_rx >= stats.bytes_rx
    total_app = sum(s.bytes_tx for s in result.nic_stats.values())
    total_wire = sum(s.wire_bytes_tx for s in result.nic_stats.values())
    # Framing overhead is bounded: < 10% for multi-KB messages.
    assert total_app < total_wire < 1.10 * total_app


def test_delivery_counts_reconcile_with_broadcasts():
    n = 5
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(pid, 6, 3_000) for pid in range(n)])
    expected = n * 6
    assert len(result.broadcasts) == expected
    for pid in range(n):
        assert len(result.delivery_logs[pid]) == expected
        assert len(result.app_deliveries[pid]) == expected


def test_conservation_with_crash():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(4):
        for _ in range(5):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.schedule_crash(3, time=0.02)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 3) >= 15
            for p in (0, 1, 2)
        ),
        max_time_s=60,
    )
    result = cluster.results()
    total_tx = sum(s.messages_tx for s in result.nic_stats.values())
    total_rx = sum(s.messages_rx for s in result.nic_stats.values())
    # A crash may strand in-flight and queued messages; reception can
    # never exceed transmission.
    assert total_rx <= total_tx


def test_fsr_network_efficiency():
    """FSR's headline property in byte terms: per delivered payload
    byte, each of the n nodes transmits about one byte — the payload
    crosses each link once (n-1 transmissions for n deliveries), plus
    small headers and acks."""
    n = 5
    per, size = 8, 50_000
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(pid, per, size) for pid in range(n)])
    payload_bytes = n * per * size
    total_tx_app = sum(s.bytes_tx for s in result.nic_stats.values())
    ratio = total_tx_app / payload_bytes
    # n-1 payload transmissions per broadcast => ratio ~= (n-1)/1 = 4,
    # plus overheads; well under the 2(n-1) a naive re-broadcast costs.
    assert (n - 1) * 0.95 < ratio < (n - 1) * 1.15, ratio
