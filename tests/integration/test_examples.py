"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
promise.  Each ``main()`` is imported and executed (they all assert
their own claims internally).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    module.main()


def test_quickstart_runs(capsys):
    _run_example("quickstart.py")
    assert "same total order" in capsys.readouterr().out


def test_replicated_kv_runs(capsys):
    _run_example("replicated_kv.py")
    out = capsys.readouterr().out
    assert "bit-identical" in out


def test_failover_demo_runs(capsys):
    _run_example("failover_demo.py")
    out = capsys.readouterr().out
    assert "Uniform total order held" in out


def test_crash_timeline_runs(capsys):
    _run_example("crash_timeline.py")
    out = capsys.readouterr().out
    assert "deliveries over" in out
    assert "0 invariant violations" in out


@pytest.mark.slow
def test_paper_figures_runs(capsys):
    _run_example("paper_figures.py")
    out = capsys.readouterr().out
    for marker in ("Table 1", "Figure 6", "Figure 7", "Figure 8", "Figure 9"):
        assert marker in out
