"""Hostile-network regression trio against the real TCP runtime.

Three always-on guards for the shaper + adaptive detector stack:

1. Jitter strictly below the adaptive detector's floor causes ZERO
   view changes — the accuracy half of the adaptive-timeout claim.
2. A genuine SIGKILL is still detected within the ceiling while a
   jitter storm is running — the completeness half.
3. Sim/live conformance: the same loss-free ``hostile_network``-style
   schedule, shaped by the simulator's per-link jitter on one side and
   the live ``NetShaper`` on the other, yields the identical delivered
   sequence (single sender: bit-identical total order).
"""

import pytest

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.chaos.campaign import apply_schedule
from repro.chaos.live import LiveChaosConfig, run_live_schedule
from repro.chaos.schedules import FaultEvent, FaultSchedule
from repro.failure.detector import adaptive_floor_s
from repro.live.runner import LiveClusterSpec, run_live_cluster
from repro.types import MessageId
from repro.workloads import KToNPattern, run_workload

pytestmark = [pytest.mark.slow, pytest.mark.live_smoke, pytest.mark.chaos_smoke]

INTERVAL_S = 0.1
TIMEOUT_S = 0.8
FLOOR_S = adaptive_floor_s(INTERVAL_S, TIMEOUT_S)
# Strictly sub-threshold: one delayed heartbeat plus the whole jitter
# magnitude still lands under the adaptive floor.
SUB_JITTER_S = round(0.3 * (FLOOR_S - INTERVAL_S), 4)


def _config():
    return LiveChaosConfig(
        seeds=1,
        scenarios=("hostile_network",),
        n=4,
        t=1,
        senders=1,
        message_bytes=10_000,
        duration_s=2.0,
        fault_window=(0.4, 1.2),
        heartbeat_interval_s=INTERVAL_S,
        heartbeat_timeout_s=TIMEOUT_S,
        max_run_s=25.0,
    )


def _schedule(events, seed=4242):
    return FaultSchedule(
        scenario="hostile_network", seed=seed, n=4, t=1,
        events=tuple(sorted(events, key=lambda e: e.time)),
        detector="heartbeat",
    )


def test_sub_threshold_jitter_causes_no_view_change():
    schedule = _schedule([
        FaultEvent("jitter_burst", 0.4, duration_s=0.8,
                   magnitude=SUB_JITTER_S, note="fabric_jitter"),
        FaultEvent("jitter_burst", 0.5, duration_s=0.5,
                   magnitude=SUB_JITTER_S, link=(0, 1), note="link_jitter"),
    ])
    outcome = run_live_schedule(schedule, _config())
    assert not outcome.failed, outcome.verdict.summary()
    assert not outcome.timed_out
    assert outcome.killed == {}
    # The accuracy claim: nothing was evicted, with or without excuse.
    assert outcome.excluded == []
    assert outcome.false_suspicions == []


def test_sigkill_detected_under_concurrent_jitter():
    schedule = _schedule([
        FaultEvent("jitter_burst", 0.3, duration_s=1.6,
                   magnitude=SUB_JITTER_S, note="jitter_during_recovery"),
        FaultEvent("crash", 0.7, process=2, note="crash_under_jitter"),
    ])
    outcome = run_live_schedule(schedule, _config())
    assert not outcome.failed, outcome.verdict.summary()
    assert not outcome.timed_out
    assert sorted(outcome.killed) == [2]
    # Only the SIGKILLed node left the view: jitter excused nothing.
    assert outcome.excluded == []
    assert outcome.false_suspicions == []
    # Completeness under noise: the survivors noticed the crash and
    # resumed delivering with a bounded outage (ceiling + flush + slack,
    # far under the parent's quiescence deadline).
    assert outcome.outage_ms is not None and outcome.outage_ms > 0.0
    assert outcome.outage_ms <= 3_000.0


MESSAGES = 8
MESSAGE_BYTES = 8_000


def _conformance_schedule():
    return _schedule([
        FaultEvent("jitter_burst", 0.2, duration_s=1.0,
                   magnitude=SUB_JITTER_S, note="fabric_jitter"),
        FaultEvent("jitter_burst", 0.3, duration_s=0.8,
                   magnitude=SUB_JITTER_S, link=(1, 2), note="link_jitter"),
    ], seed=77)


def test_shaped_run_conforms_to_shaped_sim():
    schedule = _conformance_schedule()
    # Live: static membership (nodes self-exit at quiescence), shaper
    # armed with the schedule's loss-free jitter events.
    live = run_live_cluster(LiveClusterSpec(
        processes=4,
        senders=1,
        t=1,
        message_bytes=MESSAGE_BYTES,
        duration_s=10.0,  # unused: messages_per_sender is the stop rule
        window=2,
        settle_s=0.2,
        quiet_s=0.4,
        max_run_s=30.0,
        sim_compare=False,
        messages_per_sender=MESSAGES,
        netem_events=[e.to_dict() for e in schedule.netem_events()],
        netem_scenario=schedule.scenario,
        netem_seed=schedule.seed,
        run_seed=schedule.seed,
    ))
    assert live.order_ok, live.order_error
    assert not live.timed_out

    # Sim: identical schedule through the campaign's fault armory.
    cluster = build_cluster(ClusterConfig(
        n=4, protocol="fsr", protocol_config=FSRConfig(t=1),
    ))
    apply_schedule(cluster, schedule)
    sim_result = run_workload(cluster, KToNPattern(
        senders=(0,),
        messages_per_sender=MESSAGES,
        message_bytes=MESSAGE_BYTES,
    )).result

    expected = [MessageId(0, seq) for seq in range(1, MESSAGES + 1)]
    for pid in range(4):
        live_seq = [d.message_id for d in live.result.delivery_logs[pid].deliveries]
        sim_seq = [d.message_id for d in sim_result.delivery_logs[pid].deliveries]
        assert live_seq == expected, f"live node {pid} diverged under jitter"
        assert sim_seq == expected, f"sim node {pid} diverged under jitter"
