"""The ``ring_crash`` chaos scenario: decapitating one inner ring.

Schedule-level properties (victims are one ring's sequencer-chain
prefix, tolerance-bounded) plus one end-to-end multiring run under the
schedule, judged by the oracle with the shard-interleave check armed.
"""

import re

import pytest

from repro.chaos.campaign import CampaignConfig, run_schedule
from repro.chaos.schedules import (
    DEFAULT_SCENARIOS,
    MULTIRING_SCENARIOS,
    SCENARIOS,
    ScheduleContext,
    generate_schedule,
)
from repro.protocols.multiring import offset_for_ring

CTX = ScheduleContext(n=6, t=2, shards=2)


def test_multiring_scenarios_extend_defaults_with_ring_crash():
    assert "ring_crash" in SCENARIOS
    assert "ring_crash" not in DEFAULT_SCENARIOS
    assert set(MULTIRING_SCENARIOS) == set(DEFAULT_SCENARIOS) | {"ring_crash"}


@pytest.mark.parametrize("seed", range(10))
def test_ring_crash_targets_one_chain_prefix(seed):
    schedule = generate_schedule("ring_crash", seed, CTX)
    crashes = schedule.crashes()
    # Tolerance-bounded: never more than min(t, n-1) kills.
    assert 0 < len(crashes) <= min(CTX.t, CTX.n - 1)
    # Every victim belongs to the same ring's chain, in prefix order
    # starting at that ring's rotation offset.
    rings = {
        int(re.match(r"ring(\d+)_chain_p(\d+)", e.note).group(1))
        for e in crashes
    }
    assert len(rings) == 1
    ring = rings.pop()
    offset = offset_for_ring(ring, CTX.n, CTX.shards)
    expected = {(offset + i) % CTX.n for i in range(len(crashes))}
    assert {e.process for e in crashes} == expected


def test_ring_crash_is_deterministic():
    for seed in range(5):
        assert generate_schedule("ring_crash", seed, CTX) == generate_schedule(
            "ring_crash", seed, CTX
        )


@pytest.mark.chaos_smoke
def test_ring_crash_run_is_green_on_multiring():
    cfg = CampaignConfig(protocol="multiring", shards=2, n=6, t=2)
    schedule = generate_schedule("ring_crash", 0, ScheduleContext(
        n=cfg.n, t=cfg.t, shards=cfg.shards,
    ))
    verdict, result = run_schedule(schedule, cfg)
    assert verdict.ok, verdict.summary()
    # The run really exercised the sharded path: tagged deliveries on
    # more than one ring.
    rings = {
        d.ring
        for log in result.delivery_logs.values()
        for d in log.deliveries
        if d.ring is not None
    }
    assert rings <= {0, 1} and rings
