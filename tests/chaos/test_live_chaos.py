"""Smoke test for the live chaos driver: one real SIGKILL campaign.

One seeded crash-storm schedule runs against a real 4-node localhost
cluster with live membership; the scheduled kill is a genuine SIGKILL,
recovery runs through the heartbeat detector and view-change flush, and
the merged journals must pass the full invariant battery.  The 25-seed
campaign lives in ``python -m repro chaos --live``; this is the
one-seed always-on guard.
"""

import json

import pytest

from repro.chaos.live import LiveChaosConfig, run_live_campaign

pytestmark = [pytest.mark.slow, pytest.mark.live_smoke, pytest.mark.chaos_smoke]


def test_one_seed_live_crash_storm_survives_the_battery(tmp_path):
    config = LiveChaosConfig(
        seeds=1,
        scenarios=("crash_storm",),
        n=4,
        t=1,
        senders=1,
        message_bytes=10_000,
        duration_s=2.0,
        fault_window=(0.4, 1.2),
        heartbeat_timeout_s=0.8,
        max_run_s=25.0,
    )
    report = run_live_campaign(config)

    assert report.ok, "\n\n".join(
        outcome.verdict.summary() for outcome in report.failures
    )
    assert len(report.outcomes) == 1
    outcome = report.outcomes[0]
    assert outcome.scenario == "crash_storm"
    assert not outcome.timed_out
    # The schedule really killed something, and recovery has a cost the
    # campaign can see: an outage straddling the kill.
    assert outcome.killed, "crash_storm scheduled no kill"
    assert outcome.outage_ms is not None and outcome.outage_ms > 0.0

    # The bench record round-trips with per-scenario recovery stats.
    bench_path = tmp_path / "BENCH_chaos_live.json"
    report.write_bench(str(bench_path))
    record = json.loads(bench_path.read_text())
    assert record["bench"] == "chaos_live_campaign"
    assert record["seeds_run"] == 1
    assert record["failures"] == 0
    storm = record["scenarios"]["crash_storm"]
    assert storm["seeds"] == 1
    assert storm["failures"] == 0
    assert storm["kills"] >= 1
    assert storm["mean_outage_ms"] > 0.0
