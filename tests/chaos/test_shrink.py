"""Unit tests for the schedule shrinker (synthetic predicates only)."""

from repro.chaos.schedules import FaultEvent, FaultSchedule
from repro.chaos.shrink import shrink_schedule


def crash(process, time):
    return FaultEvent("crash", time, process=process)


def schedule_of(*events):
    return FaultSchedule("synthetic", 0, 8, 4, events=tuple(events))


def test_shrinks_to_the_single_culprit_event():
    culprit = crash(3, 0.1234)
    schedule = schedule_of(crash(0, 0.08), crash(1, 0.09), culprit, crash(2, 0.15))

    def fails(candidate):
        return any(e.process == 3 for e in candidate.events)

    minimal = shrink_schedule(schedule, fails)
    assert len(minimal.events) == 1
    assert minimal.events[0].process == 3


def test_fault_independent_failure_shrinks_to_empty():
    schedule = schedule_of(crash(0, 0.08), crash(1, 0.09))
    minimal = shrink_schedule(schedule, lambda candidate: True)
    assert minimal.events == ()


def test_conjunction_of_two_events_is_preserved():
    a, b = crash(0, 0.08), crash(1, 0.12)
    schedule = schedule_of(a, crash(2, 0.09), b, crash(3, 0.1), crash(4, 0.11))

    def fails(candidate):
        processes = {e.process for e in candidate.events}
        return {0, 1} <= processes

    minimal = shrink_schedule(schedule, fails)
    assert {e.process for e in minimal.events} == {0, 1}


def test_times_round_to_coarsest_failing_value():
    schedule = schedule_of(crash(0, 0.1234))

    def fails(candidate):
        return bool(candidate.events)  # any time works

    minimal = shrink_schedule(schedule, fails)
    assert minimal.events[0].time == 0.1


def test_time_rounding_respects_the_predicate():
    schedule = schedule_of(crash(0, 0.1234))

    def fails(candidate):
        return bool(candidate.events) and candidate.events[0].time >= 0.12

    minimal = shrink_schedule(schedule, fails)
    assert minimal.events[0].time == 0.12


def test_budget_exhaustion_returns_schedule_unchanged():
    events = tuple(crash(p, 0.05 + p * 0.01) for p in range(8))
    schedule = schedule_of(*events)
    calls = []

    def fails(candidate):
        calls.append(1)
        return len(candidate.events) == len(events)  # only the full set fails

    minimal = shrink_schedule(schedule, fails, budget=3)
    assert minimal.events == events
    assert len(calls) <= 3


def test_result_is_one_minimal():
    # Failure needs any two of the first three events.
    schedule = schedule_of(crash(0, 0.08), crash(1, 0.09), crash(2, 0.1),
                           crash(3, 0.11))

    def fails(candidate):
        return sum(1 for e in candidate.events if e.process in (0, 1, 2)) >= 2

    minimal = shrink_schedule(schedule, fails)
    assert len(minimal.events) == 2
    # Dropping either survivor breaks the failure: 1-minimal.
    for index in range(len(minimal.events)):
        remaining = minimal.events[:index] + minimal.events[index + 1:]
        assert not fails(schedule_of(*remaining))
