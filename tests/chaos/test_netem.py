"""Unit tests for the live link-level shaper (``repro.chaos.netem``)."""

import pytest

from repro.chaos.netem import NetShaper
from repro.chaos.schedules import FaultEvent
from repro.errors import ConfigurationError
from repro.obs.telemetry import Telemetry


class FakeSched:
    """Records scheduled callbacks and fires them on demand."""

    def __init__(self):
        self.calls = []

    def schedule(self, delay, fn, *args):
        self.calls.append((delay, fn, args))

    def fire_all(self):
        for _, fn, args in sorted(self.calls, key=lambda c: c[0]):
            fn(*args)


def make_shaper(events, node_id=0, n=4, **kwargs):
    return NetShaper(node_id, n, events, "test", 7, **kwargs)


# ----------------------------------------------------------------------
# Event -> egress mapping
# ----------------------------------------------------------------------

def test_partition_blocks_both_sides_of_the_cut_only():
    event = FaultEvent("partition", 0.1, duration_s=0.5, group=(0, 1))
    inside = make_shaper([event], node_id=0)
    outside = make_shaper([event], node_id=2)
    # Node 0 (in the minority group) blocks egress toward 2 and 3.
    assert inside._event_dsts(event) == (2, 3)
    # Node 2 (outside) blocks egress toward the group only.
    assert outside._event_dsts(event) == (0, 1)


def test_partial_partition_touches_only_the_pair():
    event = FaultEvent(
        "partial_partition", 0.1, duration_s=0.5, link=(2, 3)
    )
    assert make_shaper([event], node_id=2)._event_dsts(event) == (3,)
    assert make_shaper([event], node_id=3)._event_dsts(event) == (2,)
    assert make_shaper([event], node_id=0)._event_dsts(event) == ()


def test_linked_burst_applies_to_src_egress_only():
    event = FaultEvent(
        "asym_loss", 0.1, duration_s=0.5, magnitude=0.2, link=(1, 2)
    )
    assert make_shaper([event], node_id=1)._event_dsts(event) == (2,)
    assert make_shaper([event], node_id=2)._event_dsts(event) == ()


def test_cluster_wide_burst_hits_all_egress_links():
    event = FaultEvent("jitter_burst", 0.1, duration_s=0.5, magnitude=0.05)
    assert make_shaper([event], node_id=1)._event_dsts(event) == (0, 2, 3)


def test_crash_and_cpu_slow_are_not_shaper_business():
    shaper = make_shaper([
        FaultEvent("crash", 0.1, process=1),
        FaultEvent("cpu_slow", 0.1, process=1, duration_s=0.2, magnitude=2.0),
    ])
    assert shaper._events == ()


# ----------------------------------------------------------------------
# Arming and the fault timeline
# ----------------------------------------------------------------------

def test_arm_schedules_activate_and_deactivate():
    event = FaultEvent("jitter_burst", 0.3, duration_s=0.5, magnitude=0.05)
    shaper = make_shaper([event])
    sched = FakeSched()
    shaper.arm(sched)
    delays = sorted(delay for delay, _, _ in sched.calls)
    assert delays == [pytest.approx(0.3), pytest.approx(0.8)]
    with pytest.raises(ConfigurationError):
        shaper.arm(sched)


def test_irrelevant_events_are_not_armed():
    # Node 0 is not an endpoint of this pair: nothing to schedule.
    event = FaultEvent(
        "partial_partition", 0.1, duration_s=0.5, link=(2, 3)
    )
    shaper = make_shaper([event], node_id=0)
    sched = FakeSched()
    shaper.arm(sched)
    assert sched.calls == []


def test_blocking_window_and_heal():
    event = FaultEvent("partition", 0.0, duration_s=1.0, group=(1,))
    shaper = make_shaper([event], node_id=0)
    assert not shaper.is_blocked(1)
    shaper._activate(event)
    assert shaper.is_blocked(1)
    assert not shaper.is_blocked(2)
    shaper._deactivate(event)
    assert not shaper.is_blocked(1)


def test_deactivate_restores_pass_through():
    event = FaultEvent("jitter_burst", 0.0, duration_s=1.0, magnitude=0.2)
    shaper = make_shaper([event])
    shaper._activate(event)
    assert shaper.plan(1, 100, now=5.0) > 5.0
    shaper._deactivate(event)
    # Fresh channel: nothing lingers once the burst ends.
    assert shaper.plan(2, 100, now=6.0) == pytest.approx(6.0)


# ----------------------------------------------------------------------
# plan(): delay, loss, caps, monotonicity, determinism
# ----------------------------------------------------------------------

def test_idle_link_is_pass_through():
    shaper = make_shaper([])
    assert shaper.plan(1, 1000, now=2.5) == pytest.approx(2.5)


def test_release_is_monotone_per_channel():
    event = FaultEvent("jitter_burst", 0.0, duration_s=9.0, magnitude=0.1)
    shaper = make_shaper([event])
    shaper._activate(event)
    last = 0.0
    for i in range(200):
        release = shaper.plan(1, 100, now=i * 1e-3)
        assert release >= last  # TCP FIFO: no overtaking
        last = release


def test_loss_becomes_bounded_synthetic_retx_delay():
    event = FaultEvent("asym_loss", 0.0, duration_s=9.0, magnitude=0.5,
                       link=(0, 1))
    telemetry = Telemetry()
    shaper = make_shaper([event], telemetry=telemetry)
    shaper._activate(event)
    worst = shaper.max_retx * shaper.rto_s
    for i in range(300):
        release = shaper.plan(1, 100, now=float(i))
        assert release - i <= worst + 1e-9
    assert telemetry.snapshot()["counters"]["netem_synthetic_retx"] > 0


def test_delay_cap_bounds_total_added_delay():
    events = [
        FaultEvent("jitter_burst", 0.0, duration_s=9.0, magnitude=0.3),
        FaultEvent("asym_loss", 0.0, duration_s=9.0, magnitude=0.9,
                   link=(0, 1)),
    ]
    shaper = make_shaper(events, delay_cap_s=0.05)
    for event in events:
        shaper._activate(event)
    for i in range(200):
        release = shaper.plan(1, 100, now=float(i))
        assert release - i <= 0.05 + 1e-9


def test_bandwidth_cap_serialises_frames():
    event = FaultEvent("bandwidth_cap", 0.0, duration_s=9.0,
                       magnitude=8_000.0)  # 1000 bytes/s
    shaper = make_shaper([event])
    shaper._activate(event)
    first = shaper.plan(1, 500, now=0.0)   # 0.5s of budget
    second = shaper.plan(1, 500, now=0.0)  # queued behind the first
    assert first == pytest.approx(0.5)
    assert second == pytest.approx(1.0)


def test_same_seed_shapes_identically():
    def run():
        event = FaultEvent("jitter_burst", 0.0, duration_s=9.0,
                           magnitude=0.1)
        shaper = make_shaper([event])
        shaper._activate(event)
        return [shaper.plan(1, 100, now=float(i)) for i in range(50)]

    assert run() == run()


def test_active_summary_reports_impairments():
    event = FaultEvent("partition", 0.0, duration_s=1.0, group=(1,))
    shaper = make_shaper([event], node_id=0)
    shaper._activate(event)
    summary = shaper.active_summary()
    assert summary["links"]["1"]["blocked"] is True
