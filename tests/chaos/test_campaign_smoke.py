"""Tier-1 chaos smoke: a 5-seed mini-campaign must be green.

The full campaign (``python -m repro chaos --seeds 50``) is the
acceptance gate; this marker-tagged slice keeps a representative bite
of it in the default test run and refreshes ``BENCH_chaos.json`` so the
perf trajectory always reflects the current tree.
"""

import json
from pathlib import Path

import pytest

from repro.chaos import CampaignConfig, run_campaign

REPO_ROOT = Path(__file__).resolve().parents[2]

SMOKE_CONFIG = CampaignConfig(seeds=5, base_seed=0)


@pytest.mark.chaos_smoke
def test_mini_campaign_is_green_and_deterministic():
    first = run_campaign(SMOKE_CONFIG)
    assert first.ok, "; ".join(
        f"seed {o.seed} ({o.scenario}): {o.verdict.summary()}"
        for o in first.failures
    )
    assert len(first.outcomes) == 5
    # One schedule per scenario: the 5-seed slice covers the round-robin.
    assert len({o.scenario for o in first.outcomes}) == 5

    second = run_campaign(SMOKE_CONFIG)
    assert first.fingerprint() == second.fingerprint()


@pytest.mark.chaos_smoke
def test_mini_campaign_emits_bench_record():
    report = run_campaign(SMOKE_CONFIG)
    record = report.bench_record()
    assert record["bench"] == "chaos_campaign"
    assert record["seeds_run"] == 5
    assert record["failures"] == 0
    assert record["mean_recovery_outage_ms"] > 0

    bench_path = REPO_ROOT / "BENCH_chaos.json"
    report.write_bench(bench_path)
    on_disk = json.loads(bench_path.read_text())
    assert on_disk == json.loads(json.dumps(record))


@pytest.mark.chaos_smoke
def test_report_serialises(tmp_path):
    report = run_campaign(SMOKE_CONFIG)
    out = tmp_path / "report.json"
    report.write_json(out)
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert data["seeds_run"] == 5
    assert len(data["outcomes"]) == 5
    for outcome in data["outcomes"]:
        assert outcome["verdict"]["ok"] is True
        assert outcome["schedule"]["events"]
