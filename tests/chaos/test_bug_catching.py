"""The campaign must catch deliberately injected protocol bugs.

These tests patch a known-good seam of the FSR process, re-run a small
campaign, and require (a) a red verdict naming the broken invariant and
(b) a shrunk minimal reproducer — the end-to-end property the whole
chaos subsystem exists for.
"""

import dataclasses

import pytest

from repro.chaos import CampaignConfig, run_campaign, run_schedule
from repro.chaos.schedules import generate_schedule
from repro.core.fsr.process import FSRProcess


@pytest.fixture
def premature_delivery(monkeypatch):
    """Uniformity bug: deliver on first receipt, ignoring stability.

    The wire bits stay untouched, so without crashes every run still
    looks healthy — only a crash interleaving exposes the bug, which is
    exactly the case the campaign exists to find.
    """
    orig = FSRProcess._handle_seq

    def buggy(self, msg):
        orig(self, msg)
        self._mark_deliverable(msg.sequence)

    monkeypatch.setattr(FSRProcess, "_handle_seq", buggy)


@pytest.fixture
def skipped_stability_bit(monkeypatch):
    """Cruder bug: treat every SeqData as already stable on arrival."""
    orig = FSRProcess._handle_seq

    def buggy(self, msg):
        orig(self, dataclasses.replace(msg, stable=True))

    monkeypatch.setattr(FSRProcess, "_handle_seq", buggy)


def test_premature_delivery_invisible_without_faults(premature_delivery):
    cfg = CampaignConfig(seeds=10, wire_monitor=False)
    # A degradation-only schedule (no crash): the bug must NOT show,
    # proving the catch below is the crash interleaving's doing.
    schedule = generate_schedule("degraded_network", 24, cfg.schedule_context())
    assert not schedule.crashes()
    verdict, _ = run_schedule(schedule, cfg)
    assert verdict.ok


def test_campaign_catches_and_shrinks_premature_delivery(premature_delivery):
    report = run_campaign(CampaignConfig(seeds=10, wire_monitor=False))
    assert not report.ok
    failure = report.failures[0]
    violated = {v.invariant for v in failure.verdict.violations}
    assert "uniformity" in violated
    assert failure.minimal is not None
    assert len(failure.minimal.events) <= 3
    # The reproducer replays red on its own.
    verdict, _ = run_schedule(
        failure.minimal, CampaignConfig(seeds=10, wire_monitor=False)
    )
    assert not verdict.ok


def test_campaign_catches_skipped_stability_bit(skipped_stability_bit):
    report = run_campaign(CampaignConfig(seeds=5, wire_monitor=False))
    assert not report.ok
    failure = report.failures[0]
    violated = {v.invariant for v in failure.verdict.violations}
    assert violated & {"uniformity", "agreement", "liveness"}
    # This bug breaks the protocol even without faults, and the shrinker
    # proves it by reducing the schedule to nothing.
    assert failure.minimal is not None
    assert len(failure.minimal.events) <= 3
