"""Unit tests for the fault-schedule generators."""

import pytest

from repro.chaos.schedules import (
    DEFAULT_SCENARIOS,
    SCENARIOS,
    UNSOUND_SCENARIOS,
    FaultEvent,
    FaultSchedule,
    ScheduleContext,
    generate_schedule,
)
from repro.errors import ConfigurationError

CTX = ScheduleContext(n=6, t=2)

ALL_SCENARIOS = sorted(SCENARIOS) + sorted(UNSOUND_SCENARIOS)


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
def test_generation_is_deterministic(scenario):
    for seed in range(5):
        a = generate_schedule(scenario, seed, CTX)
        b = generate_schedule(scenario, seed, CTX)
        assert a == b


def test_different_seeds_differ():
    schedules = {generate_schedule("crash_storm", s, CTX).events for s in range(20)}
    assert len(schedules) > 1


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_sound_scenarios_respect_crash_budget(scenario):
    for seed in range(30):
        schedule = generate_schedule(scenario, seed, CTX)
        crashes = schedule.crashes()
        assert len(crashes) <= CTX.t
        assert len({e.process for e in crashes}) == len(crashes)
        for event in crashes:
            assert 0 <= event.process < CTX.n
        assert not schedule.fd_unsound
        # Partition scenarios need a real detector (the oracle cannot
        # observe a partition); everything else stays on the oracle.
        expected_detector = (
            "heartbeat" if scenario == "hostile_network" else "oracle"
        )
        assert schedule.detector == expected_detector


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_sound_degradations_stay_within_fd_bounds(scenario):
    from repro.failure.detector import adaptive_floor_s

    floor = adaptive_floor_s(CTX.heartbeat_interval_s, CTX.heartbeat_timeout_s)
    for seed in range(30):
        schedule = generate_schedule(scenario, seed, CTX)
        for event in schedule.degradations():
            assert event.duration_s > 0
            if event.kind in ("loss_burst", "asym_loss"):
                assert 0.0 < event.magnitude < 1.0
            elif event.kind == "cpu_slow":
                assert 1.0 < event.magnitude <= CTX.max_slowdown
            elif event.kind == "jitter_burst":
                # Strictly below the adaptive detector's floor: jitter
                # alone must never be able to trigger a suspicion.
                assert 0.0 < event.magnitude < floor - CTX.heartbeat_interval_s


def test_fd_violation_is_marked_unsound():
    schedule = generate_schedule("fd_violation", 0, CTX)
    assert schedule.fd_unsound
    assert schedule.detector == "heartbeat"
    (event,) = schedule.events
    assert event.kind == "cpu_slow"
    # The slowdown must push per-heartbeat service past the suspicion
    # timeout, otherwise the scenario would not violate anything.
    assert event.magnitude * CTX.heartbeat_interval_s > CTX.heartbeat_timeout_s


def test_default_scenarios_are_exactly_the_sound_ones():
    # hostile_network is sound but targets the live runtime; the sim
    # campaign runs it opt-in (``--scenario hostile_network``) only.
    # ring_crash is sound but aims at the multiring protocol; it joins
    # the rotation through MULTIRING_SCENARIOS (``--shards`` campaigns).
    assert set(DEFAULT_SCENARIOS) == set(SCENARIOS) - {
        "hostile_network", "ring_crash",
    }
    assert not set(DEFAULT_SCENARIOS) & set(UNSOUND_SCENARIOS)


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
def test_schedule_roundtrips_through_dict(scenario):
    schedule = generate_schedule(scenario, 7, CTX)
    assert FaultSchedule.from_dict(schedule.to_dict()) == schedule


def test_reproducer_snippet_evaluates_back():
    schedule = generate_schedule("view_change_crossfire", 3, CTX)
    rebuilt = eval(  # noqa: S307 - the snippet is our own output
        schedule.reproducer(), {"FaultSchedule": FaultSchedule}
    )
    assert rebuilt == schedule


def test_unknown_scenario_raises():
    with pytest.raises(ConfigurationError):
        generate_schedule("nope", 0, CTX)


def test_fault_event_validation():
    with pytest.raises(ConfigurationError):
        FaultEvent("explode", 0.1)
    with pytest.raises(ConfigurationError):
        FaultEvent("crash", -0.1, process=0)
    with pytest.raises(ConfigurationError):
        FaultEvent("crash", 0.1)  # crash needs a target
    with pytest.raises(ConfigurationError):
        FaultEvent("loss_burst", 0.1)  # burst needs a duration


def test_needs_arq_only_with_loss():
    loss = FaultSchedule(
        "x", 0, 6, 2,
        events=(FaultEvent("loss_burst", 0.1, duration_s=0.01, magnitude=0.1),),
    )
    crash = FaultSchedule(
        "x", 0, 6, 2, events=(FaultEvent("crash", 0.1, process=1),)
    )
    assert loss.needs_arq()
    assert not crash.needs_arq()
