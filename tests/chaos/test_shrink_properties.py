"""Property tests for the schedule shrinker (hypothesis).

The fixed-case tests in ``test_shrink.py`` pin specific behaviours;
these pin the ddmin *contract* over randomly generated schedules and
culprit predicates:

* the shrunk schedule still fails the predicate,
* it is 1-minimal (no single event can be dropped),
* shrinking is deterministic (same inputs, same output), and
* it only ever removes or time-rounds events — never invents them.

Predicates are keyed on event *processes*, not times, so they are
stable under the shrinker's time-rounding phase.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.chaos.schedules import FaultEvent, FaultSchedule
from repro.chaos.shrink import shrink_schedule

_processes = st.integers(min_value=0, max_value=7)
# Times on a 0.1ms grid in (0, 1): exact in binary enough for the
# rounding phase to behave like production schedules do.
_times = st.integers(min_value=1, max_value=9_999).map(lambda n: n / 10_000)

_event_lists = st.lists(
    st.tuples(_processes, _times),
    min_size=1,
    max_size=10,
)


def _schedule(raw_events):
    events = tuple(
        FaultEvent("crash", time, process=process)
        for process, time in raw_events
    )
    return FaultSchedule("synthetic", 0, 8, 4, events=events)


def _culprit_predicate(culprits):
    """Fails iff every culprit process still has at least one event.

    Monotone in the event set and independent of times, which makes
    the ground-truth minimum exactly one event per culprit.
    """

    def fails(candidate):
        return culprits <= {e.process for e in candidate.events}

    return fails


@st.composite
def _cases(draw):
    raw = draw(_event_lists)
    processes = sorted({process for process, _ in raw})
    culprits = draw(
        st.sets(st.sampled_from(processes), min_size=1)
    )
    return _schedule(raw), frozenset(culprits)


@settings(max_examples=200, deadline=None)
@given(_cases())
def test_shrunk_schedule_still_fails(case):
    schedule, culprits = case
    fails = _culprit_predicate(culprits)
    minimal = shrink_schedule(schedule, fails, budget=10_000)
    assert fails(minimal)


@settings(max_examples=200, deadline=None)
@given(_cases())
def test_shrunk_schedule_is_one_minimal(case):
    schedule, culprits = case
    fails = _culprit_predicate(culprits)
    minimal = shrink_schedule(schedule, fails, budget=10_000)
    # Ground truth: one event per culprit process suffices, and ddmin
    # with an ample budget must find a set of exactly that size.
    assert len(minimal.events) == len(culprits)
    for index in range(len(minimal.events)):
        remaining = replace(
            minimal,
            events=minimal.events[:index] + minimal.events[index + 1:],
        )
        assert not fails(remaining), "a droppable event survived ddmin"


@settings(max_examples=100, deadline=None)
@given(_cases())
def test_shrinking_is_deterministic(case):
    schedule, culprits = case
    first = shrink_schedule(schedule, _culprit_predicate(culprits), budget=10_000)
    second = shrink_schedule(schedule, _culprit_predicate(culprits), budget=10_000)
    assert first == second


@settings(max_examples=200, deadline=None)
@given(_cases())
def test_shrinking_never_invents_events(case):
    schedule, culprits = case
    minimal = shrink_schedule(schedule, _culprit_predicate(culprits), budget=10_000)
    assert len(minimal.events) <= len(schedule.events)
    originals = list(schedule.events)
    for event in minimal.events:
        # Each survivor descends from an original event: same kind and
        # process, time only ever rounded *down* by the rounding phase.
        parent = next(
            (
                o
                for o in originals
                if o.kind == event.kind
                and o.process == event.process
                and event.time <= o.time
            ),
            None,
        )
        assert parent is not None, f"{event} has no ancestor in the input"
        originals.remove(parent)
    # Everything but the event list is untouched.
    assert replace(minimal, events=schedule.events) == schedule
