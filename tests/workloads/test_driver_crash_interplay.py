"""Workload drivers must cope with senders crashing mid-pattern."""

import pytest

from repro.checker import check_integrity, check_total_order
from repro.workloads import BurstPattern, ThrottledPattern
from repro.workloads.driver import _inject_bursts, _inject_throttled
from tests.conftest import small_cluster


def test_burst_sender_crash_stops_its_schedule():
    cluster = small_cluster(n=4)
    cluster.start()
    cluster.run(until=5e-3)
    pattern = BurstPattern(
        senders=(1, 2), messages_per_sender=12, message_bytes=2_000,
        burst_size=3, gap_s=0.01,
    )
    sent = {1: [], 2: []}
    _inject_bursts(cluster, pattern, sent)
    cluster.schedule_crash(1, time=0.015)  # between bursts
    cluster.run(until=0.2)
    # Sender 1 got at most two bursts out before dying.
    assert len(sent[1]) <= 6
    # Sender 2 completed its whole schedule.
    assert len(sent[2]) == 12
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)


def test_throttled_sender_crash_stops_its_schedule():
    cluster = small_cluster(n=4)
    cluster.start()
    cluster.run(until=5e-3)
    pattern = ThrottledPattern(
        senders=(1, 2), messages_per_sender=20, message_bytes=2_000,
        offered_load_bps=3.2e6,  # one 2 KB message / 10 ms over 2 senders
    )
    sent = {1: [], 2: []}
    _inject_throttled(cluster, pattern, sent)
    cluster.schedule_crash(2, time=0.05)
    cluster.run(until=0.5)
    assert len(sent[2]) < 20
    assert len(sent[1]) == 20
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)


def test_survivors_deliver_crashed_senders_completed_prefix():
    cluster = small_cluster(n=4)
    cluster.start()
    cluster.run(until=5e-3)
    pattern = BurstPattern(
        senders=(3,), messages_per_sender=9, message_bytes=2_000,
        burst_size=3, gap_s=0.02,
    )
    sent = {3: []}
    _inject_bursts(cluster, pattern, sent)
    cluster.schedule_crash(3, time=0.025)  # after the second burst fires
    cluster.run(until=0.4)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    # Whatever of sender 3's messages the survivors delivered, they all
    # agree on it exactly.
    logs = [
        [str(d.message_id) for d in result.delivery_logs[p].deliveries]
        for p in (0, 1, 2)
    ]
    assert logs[0] == logs[1] == logs[2]
