"""Unit tests for workload pattern descriptions."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import BurstPattern, KToNPattern, ThrottledPattern, WorkloadPattern


def test_totals():
    pattern = WorkloadPattern(senders=(0, 1), messages_per_sender=3, message_bytes=100)
    assert pattern.total_messages == 6
    assert pattern.total_bytes == 600


def test_n_to_n_constructor():
    pattern = KToNPattern.n_to_n(4, 10)
    assert pattern.senders == (0, 1, 2, 3)
    assert pattern.message_bytes == 100_000  # the paper's size


def test_k_to_n_constructor():
    pattern = KToNPattern.k_to_n(2, 5, 7, message_bytes=500)
    assert pattern.senders == (0, 1)
    assert pattern.messages_per_sender == 7
    with pytest.raises(ConfigurationError):
        KToNPattern.k_to_n(6, 5, 1)
    with pytest.raises(ConfigurationError):
        KToNPattern.k_to_n(0, 5, 1)


def test_validation():
    with pytest.raises(ConfigurationError):
        WorkloadPattern(senders=())
    with pytest.raises(ConfigurationError):
        WorkloadPattern(messages_per_sender=0)
    with pytest.raises(ConfigurationError):
        WorkloadPattern(message_bytes=0)
    with pytest.raises(ConfigurationError):
        BurstPattern(burst_size=0)
    with pytest.raises(ConfigurationError):
        BurstPattern(gap_s=-1)
    with pytest.raises(ConfigurationError):
        ThrottledPattern(offered_load_bps=0)


def test_throttled_interval():
    pattern = ThrottledPattern(
        senders=(0, 1), message_bytes=100_000, offered_load_bps=40e6,
        messages_per_sender=5,
    )
    # 20 Mb/s per sender, 0.8 Mb per message -> one message per 40 ms.
    assert pattern.per_sender_interval_s() == pytest.approx(0.04)
