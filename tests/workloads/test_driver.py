"""Unit tests for the workload driver and §5.1 measurement protocol."""

import pytest

from repro.checker import check_all
from repro.workloads import BurstPattern, KToNPattern, ThrottledPattern, run_workload
from tests.conftest import small_cluster


def test_blast_completes_everything():
    cluster = small_cluster(n=3)
    pattern = KToNPattern.n_to_n(3, 4, message_bytes=2_000)
    outcome = run_workload(cluster, pattern)
    check_all(outcome.result)
    assert all(len(ids) == 4 for ids in outcome.sent.values())
    for deliveries in outcome.result.app_deliveries.values():
        assert len(deliveries) == 12


def test_per_sender_throughput_defined_for_all():
    cluster = small_cluster(n=3)
    outcome = run_workload(cluster, KToNPattern.n_to_n(3, 5, message_bytes=5_000))
    for sender in range(3):
        value = outcome.sender_throughput_bps(sender)
        assert value is not None and value > 0
    assert outcome.aggregate_throughput_bps() == pytest.approx(
        sum(outcome.sender_throughput_bps(s) for s in range(3))
    )


def test_sender_stop_time_is_completion_of_last_message():
    cluster = small_cluster(n=3)
    outcome = run_workload(cluster, KToNPattern.k_to_n(1, 3, 3, message_bytes=2_000))
    last = outcome.sent[0][-1]
    assert outcome.sender_stop_time(0) == outcome.result.completion_time(last)


def test_burst_pattern_spaces_submissions():
    cluster = small_cluster(n=3)
    pattern = BurstPattern(
        senders=(1,), messages_per_sender=6, message_bytes=1_000,
        burst_size=2, gap_s=0.02,
    )
    outcome = run_workload(cluster, pattern)
    submits = sorted(
        record.submit_time for record in outcome.result.broadcasts
    )
    assert len(submits) == 6
    # Three bursts of two: two large gaps of ~20 ms.
    gaps = [b - a for a, b in zip(submits, submits[1:])]
    large = [g for g in gaps if g > 0.015]
    assert len(large) == 2


def test_throttled_pattern_paces_submissions():
    cluster = small_cluster(n=3)
    pattern = ThrottledPattern(
        senders=(0,), messages_per_sender=5, message_bytes=10_000,
        offered_load_bps=8e6,  # one 10 KB message every 10 ms
    )
    outcome = run_workload(cluster, pattern)
    submits = sorted(r.submit_time for r in outcome.result.broadcasts)
    gaps = [b - a for a, b in zip(submits, submits[1:])]
    assert all(g == pytest.approx(0.01, rel=0.05) for g in gaps)


def test_start_time_measured_after_settle():
    cluster = small_cluster(n=2)
    outcome = run_workload(
        cluster, KToNPattern.n_to_n(2, 2, message_bytes=1_000), settle_s=0.02
    )
    assert outcome.start_time >= 0.02
