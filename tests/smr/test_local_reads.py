"""Tests for the footnote-1 local-read fast path."""

import pytest

from repro.errors import ProtocolError
from repro.smr import Command, KVStore, ReplicatedStateMachine
from tests.conftest import small_cluster


def _replicated(n=3):
    cluster = small_cluster(n=n)
    replicas = {
        pid: ReplicatedStateMachine(node.protocol, KVStore())
        for pid, node in cluster.nodes.items()
    }
    cluster.start()
    cluster.run(until=5e-3)
    return cluster, replicas


def test_local_read_returns_applied_prefix():
    cluster, replicas = _replicated()
    replicas[0].submit(Command("put", ("k", 42)))
    cluster.run_until(
        lambda: all(r.applied_count >= 1 for r in replicas.values()),
        max_time_s=30,
    )
    for replica in replicas.values():
        assert replica.local_read(Command("get", ("k",))) == 42


def test_local_read_is_free_of_broadcast_traffic():
    cluster, replicas = _replicated()
    replicas[1].submit(Command("put", ("k", 1)))
    cluster.run_until(
        lambda: all(r.applied_count >= 1 for r in replicas.values()),
        max_time_s=30,
    )
    tx_before = sum(
        cluster.network.stats_of(p).messages_tx for p in range(3)
    )
    for _ in range(100):
        replicas[2].local_read(Command("get", ("k",)))
    cluster.run(until=cluster.sim.now + 0.01)
    tx_after = sum(
        cluster.network.stats_of(p).messages_tx for p in range(3)
    )
    assert tx_after == tx_before


def test_local_read_rejects_mutating_commands():
    cluster, replicas = _replicated()
    with pytest.raises(ProtocolError, match="read-only"):
        replicas[0].local_read(Command("put", ("k", 1)))
    with pytest.raises(ProtocolError, match="read-only"):
        replicas[0].local_read(Command("incr", ("k", 1)))


def test_local_read_can_lag_the_total_order():
    """The documented weakness: a replica that has not yet applied a
    command serves the older value — sequential, not linearisable."""
    cluster, replicas = _replicated()
    replicas[0].submit(Command("put", ("k", "new")))
    # No simulation step yet: nothing applied anywhere.
    assert replicas[2].local_read(Command("get", ("k",))) is None
    cluster.run_until(
        lambda: all(r.applied_count >= 1 for r in replicas.values()),
        max_time_s=30,
    )
    assert replicas[2].local_read(Command("get", ("k",))) == "new"
