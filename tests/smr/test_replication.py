"""Tests for state machine replication over TO-broadcast."""

import pytest

from repro.errors import ProtocolError
from repro.smr import Command, KVStore, ReplicatedStateMachine
from tests.conftest import small_cluster


def _replicated_cluster(n=3, protocol="fsr"):
    cluster = small_cluster(n=n, protocol=protocol, protocol_config=None)
    replicas = {
        pid: ReplicatedStateMachine(node.protocol, KVStore())
        for pid, node in cluster.nodes.items()
    }
    cluster.start()
    cluster.run(until=5e-3)
    return cluster, replicas


def _run_until_applied(cluster, replicas, count, survivors=None, max_time_s=60.0):
    pids = survivors if survivors is not None else list(replicas)
    cluster.run_until(
        lambda: all(replicas[p].applied_count >= count for p in pids),
        max_time_s=max_time_s,
    )
    cluster.run(until=cluster.sim.now + 5e-3)


def test_command_round_trip():
    command = Command("put", ("key", [1, 2, {"x": None}]))
    assert Command.decode(command.encode()) == Command(
        "put", ("key", [1, 2, {"x": None}])
    )


def test_undecodable_payload_rejected():
    with pytest.raises(ProtocolError):
        Command.decode(b"\xff\xfe not json")


def test_kvstore_operations():
    store = KVStore()
    assert store.apply(Command("put", ("a", 1))) is None
    assert store.apply(Command("put", ("a", 2))) == 1
    assert store.apply(Command("get", ("a",))) == 2
    assert store.apply(Command("incr", ("a", 5))) == 7
    assert store.apply(Command("cas", ("a", 7, 8))) is True
    assert store.apply(Command("cas", ("a", 7, 9))) is False
    assert store.apply(Command("delete", ("a",))) is True
    assert store.apply(Command("delete", ("a",))) is False
    assert len(store) == 0


def test_kvstore_rejects_unknown_op_and_bad_incr():
    store = KVStore()
    with pytest.raises(ProtocolError):
        store.apply(Command("explode", ()))
    store.apply(Command("put", ("s", "text")))
    with pytest.raises(ProtocolError):
        store.apply(Command("incr", ("s",)))


def test_replicas_converge_under_concurrent_writers():
    cluster, replicas = _replicated_cluster(n=4)
    for round_index in range(5):
        replicas[0].submit(Command("incr", ("counter", 1)))
        replicas[1].submit(Command("incr", ("counter", 10)))
        replicas[2].submit(Command("put", (f"k{round_index}", round_index)))
        replicas[3].submit(Command("cas", ("owner", None, f"p3-{round_index}")))
    _run_until_applied(cluster, replicas, 20)
    snapshots = [replicas[p].snapshot() for p in range(4)]
    assert all(s == snapshots[0] for s in snapshots)
    assert snapshots[0]["counter"] == 55
    assert snapshots[0]["owner"] == "p3-0"


def test_local_results_visible_after_apply():
    cluster, replicas = _replicated_cluster(n=3)
    mid = replicas[1].submit(Command("put", ("x", 42)))
    replicas[1].submit(Command("incr", ("n", 2)))
    _run_until_applied(cluster, replicas, 2)
    assert replicas[1].result_of(mid) is None  # previous value of x
    assert replicas[1].snapshot() == {"x": 42, "n": 2}


def test_apply_callback_sees_total_order():
    cluster, replicas = _replicated_cluster(n=3)
    seen = {p: [] for p in range(3)}
    for pid in range(3):
        replicas[pid].on_apply(
            lambda index, origin, cmd, result, p=pid: seen[p].append((origin, cmd.op))
        )
    replicas[0].submit(Command("put", ("a", 1)))
    replicas[2].submit(Command("put", ("b", 2)))
    _run_until_applied(cluster, replicas, 2)
    assert seen[0] == seen[1] == seen[2]
    assert len(seen[0]) == 2


def test_replicas_converge_across_leader_crash():
    cluster, replicas = _replicated_cluster(n=4)
    for i in range(8):
        replicas[1].submit(Command("incr", ("a", 1)))
        replicas[2].submit(Command("incr", ("b", 1)))
    cluster.schedule_crash(0, time=0.02)
    _run_until_applied(cluster, replicas, 16, survivors=[1, 2, 3])
    snapshots = [replicas[p].snapshot() for p in (1, 2, 3)]
    assert all(s == snapshots[0] for s in snapshots)
    assert snapshots[0] == {"a": 8, "b": 8}


def test_smr_works_over_baseline_protocols():
    cluster, replicas = _replicated_cluster(n=3, protocol="fixed_sequencer")
    replicas[0].submit(Command("put", ("k", "v")))
    replicas[2].submit(Command("incr", ("c", 3)))
    _run_until_applied(cluster, replicas, 2)
    assert all(
        replicas[p].snapshot() == {"k": "v", "c": 3} for p in range(3)
    )
