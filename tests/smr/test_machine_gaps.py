"""Gap coverage for the SMR layer: error paths and snapshot plumbing.

These paths matter once real clients drive the replicated machine
(``repro.serve``): a malformed or adversarial command must be a
deterministic rejection — identical on every replica — never a replica
crash, and snapshots must round-trip for the dedup-table state the
session layer persists through them.
"""

import pytest

from repro.errors import ProtocolError
from repro.smr import Command, KVStore, ReplicatedStateMachine


# -- Command codec edge cases ------------------------------------------
@pytest.mark.parametrize("payload", [
    b"5",                      # not a [op, args] pair
    b"{}",                     # empty object
    b'{"op": "put"}',          # object, not a pair
    b'["put", 7]',             # args not iterable
    b'["put"]',                # too few elements
    b'["put", [], []]',        # too many elements
    b"\xff\xfe not json",
])
def test_command_decode_rejects_malformed_payloads(payload):
    with pytest.raises(ProtocolError):
        Command.decode(payload)


# -- KVStore error paths -----------------------------------------------
def test_kvstore_bad_arity_is_a_deterministic_rejection():
    store = KVStore()
    with pytest.raises(ProtocolError):
        store.apply(Command("put", ("only-one-arg",)))
    with pytest.raises(ProtocolError):
        store.apply(Command("get", ()))
    with pytest.raises(ProtocolError):
        store.apply(Command("cas", ("k",)))
    # The failed commands left no partial state behind.
    assert store.snapshot() == {}


def test_kvstore_bad_incr_amount_rejected():
    store = KVStore()
    store.apply(Command("put", ("k", 1)))
    with pytest.raises(ProtocolError):
        store.apply(Command("incr", ("k", "not-a-number")))
    assert store.apply(Command("get", ("k",))) == 1


def test_kvstore_snapshot_restore_round_trip():
    store = KVStore()
    store.apply(Command("put", ("a", 1)))
    store.apply(Command("put", ("b", ["nested", {"x": None}])))
    snap = store.snapshot()

    other = KVStore()
    other.restore(snap)
    assert other.snapshot() == snap
    assert other.apply(Command("get", ("b",))) == ["nested", {"x": None}]
    # Restore replaces, not merges.
    other.restore({})
    assert len(other) == 0


def test_kvstore_snapshot_is_isolated_from_the_store():
    store = KVStore()
    store.apply(Command("put", ("a", 1)))
    snap = store.snapshot()
    snap["a"] = 99
    snap["rogue"] = True
    assert store.apply(Command("get", ("a",))) == 1
    assert store.apply(Command("get", ("rogue",))) is None


# -- ReplicatedStateMachine plumbing -----------------------------------
class _RecordingBroadcast:
    """Minimal TotalOrderBroadcast stand-in: records, delivers on demand."""

    def __init__(self) -> None:
        self.listener = None
        self.sent = []

    def set_listener(self, listener) -> None:
        self.listener = listener

    def broadcast(self, payload: bytes):
        message_id = f"m{len(self.sent)}"
        self.sent.append((message_id, payload))
        return message_id


def test_rsm_public_deliver_matches_listener_path():
    broadcast = _RecordingBroadcast()
    rsm = ReplicatedStateMachine(broadcast, KVStore())
    applies = []
    rsm.on_apply(lambda index, origin, command, result:
                 applies.append((index, origin, command.op, result)))

    message_id = rsm.submit(Command("put", ("k", "v")))
    # A multiplexing runtime forwards deliveries explicitly.
    rsm.deliver(2, message_id, broadcast.sent[0][1], size=10)
    assert rsm.applied_count == 1
    assert rsm.result_of(message_id) is None  # put of a fresh key
    assert applies == [(1, 2, "put", None)]
    assert rsm.snapshot() == {"k": "v"}


def test_rsm_result_of_unknown_message_is_none():
    rsm = ReplicatedStateMachine(_RecordingBroadcast(), KVStore())
    assert rsm.result_of("never-delivered") is None


def test_rsm_undecodable_delivery_raises_protocol_error():
    rsm = ReplicatedStateMachine(_RecordingBroadcast(), KVStore())
    with pytest.raises(ProtocolError):
        rsm.deliver(0, "m0", b"garbage", size=7)
    assert rsm.applied_count == 0


def test_rsm_local_read_rejects_mutations():
    rsm = ReplicatedStateMachine(_RecordingBroadcast(), KVStore())
    rsm.deliver(0, "m0", Command("put", ("k", 5)).encode(), size=1)
    assert rsm.local_read(Command("get", ("k",))) == 5
    with pytest.raises(ProtocolError):
        rsm.local_read(Command("delete", ("k",)))
    assert rsm.applied_count == 1  # the rejected read applied nothing
