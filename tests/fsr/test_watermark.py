"""Dedicated tests for the stability watermark and garbage collection.

The watermark is the mechanism bounding FSR's memory (retained records)
and the size of flush states; its invariant — never advance past what
*every* process can already deliver — is what makes GC safe for
recovery.  See DESIGN.md §5.
"""

import pytest

from repro.core.fsr import FSRConfig
from tests.conftest import run_broadcasts, small_cluster


def test_watermark_never_exceeds_own_delivery():
    """A process's watermark never runs ahead of its own deliveries
    while traffic is in flight (sampled densely during a run)."""
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    violations = []

    def sample():
        for node in cluster.nodes.values():
            p = node.protocol
            if p.watermark > p.last_delivered_sequence:
                violations.append((node.node_id, p.watermark,
                                   p.last_delivered_sequence))
        cluster.sim.schedule(0.5e-3, sample)

    cluster.sim.schedule(1e-3, sample)
    for pid in range(5):
        for _ in range(10):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(50), max_time_s=30)
    assert violations == []


def test_gc_never_drops_undelivered_records():
    """Records above the local delivery point are always retained."""
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    holes = []

    def sample():
        for node in cluster.nodes.values():
            p = node.protocol
            for seq in range(p.last_delivered_sequence + 1, p._next_seq):
                pass  # leader-only attribute; skip detailed scan
            # gc cursor must never pass the local delivery point
            if p._gc_cursor > p.last_delivered_sequence:
                holes.append((node.node_id, p._gc_cursor,
                              p.last_delivered_sequence))
        cluster.sim.schedule(0.5e-3, sample)

    cluster.sim.schedule(1e-3, sample)
    for pid in range(4):
        for _ in range(10):
            cluster.broadcast(pid, size_bytes=5_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(40), max_time_s=30)
    assert holes == []


def test_retention_bounded_under_sustained_load():
    """Memory does not grow with the number of messages *sent* — only
    with the number in flight.  Paced senders (steady-state, bounded
    in-flight) must show workload-independent peak retention; a blast
    necessarily retains its whole in-flight backlog."""
    samples = []
    for messages in (15, 45):
        cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
        cluster.start()
        cluster.run(until=5e-3)
        peak = 0

        def sample():
            nonlocal peak
            peak = max(
                peak,
                max(n.protocol.retained_count for n in cluster.nodes.values()),
            )
            cluster.sim.schedule(0.5e-3, sample)

        cluster.sim.schedule(1e-3, sample)

        remaining = {pid: messages for pid in range(4)}

        def send(pid):
            if remaining[pid] <= 0:
                return
            remaining[pid] -= 1
            cluster.broadcast(pid, size_bytes=5_000)
            cluster.sim.schedule(2e-3, send, pid)  # paced: 1 msg / 2 ms

        for pid in range(4):
            send(pid)
        cluster.run_until(
            lambda: cluster.all_correct_delivered(4 * messages), max_time_s=60
        )
        samples.append(peak)
    # Tripling the workload must not inflate peak retention.
    assert samples[1] < samples[0] * 1.5


def test_watermark_catches_up_at_quiescence():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(pid, 5, 2_000) for pid in range(4)],
                            settle_s=20e-3)
    # After the final settle, stragglers are drained: the consumer's
    # watermark covers everything and most records are collected.
    consumer = cluster.nodes[0].protocol  # position t-1 = 0 for t=1
    assert consumer.watermark == consumer.last_delivered_sequence == 20
    assert consumer.retained_count == 0
