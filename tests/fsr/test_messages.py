"""Unit tests for FSR wire formats and config validation."""

import pytest

from repro.core.fsr import FSRConfig
from repro.core.fsr.messages import (
    ACK_BYTES,
    AckBatch,
    AckMsg,
    DATA_HEADER_BYTES,
    FwdData,
    SeqData,
    data_origin,
)
from repro.errors import ConfigurationError
from repro.types import MessageId


MID = MessageId(origin=2, local_seq=7)


def test_fwd_size_counts_header_and_payload():
    message = FwdData(message_id=MID, origin=2, payload=None, payload_size=1000, view_id=0)
    assert message.wire_size_bytes() == DATA_HEADER_BYTES + 1000


def test_seq_size_larger_than_fwd():
    fwd = FwdData(message_id=MID, origin=2, payload=None, payload_size=500, view_id=0)
    seq = SeqData(
        message_id=MID, origin=2, payload=None, payload_size=500,
        sequence=1, stable=False, view_id=0,
    )
    assert seq.wire_size_bytes() > fwd.wire_size_bytes()


def test_piggybacked_acks_add_bytes():
    ack = AckMsg(message_id=MID, sequence=1, stable=True, view_id=0)
    bare = FwdData(message_id=MID, origin=2, payload=None, payload_size=0, view_id=0)
    loaded = FwdData(
        message_id=MID, origin=2, payload=None, payload_size=0, view_id=0,
        piggybacked=[ack, ack],
    )
    assert loaded.wire_size_bytes() == bare.wire_size_bytes() + 2 * ACK_BYTES


def test_segment_metadata_costs_bytes():
    plain = FwdData(message_id=MID, origin=2, payload=None, payload_size=0, view_id=0)
    tagged = FwdData(
        message_id=MID, origin=2, payload=None, payload_size=0, view_id=0,
        segment=(MID, 0, 4),
    )
    assert tagged.wire_size_bytes() > plain.wire_size_bytes()


def test_ack_batch_scales_with_count():
    acks = [AckMsg(message_id=MID, sequence=i, stable=True, view_id=0) for i in range(3)]
    batch = AckBatch(acks=acks, view_id=0)
    assert batch.wire_size_bytes() == AckBatch(acks=[], view_id=0).wire_size_bytes() + 3 * ACK_BYTES


def test_data_origin_helper():
    fwd = FwdData(message_id=MID, origin=2, payload=None, payload_size=0, view_id=0)
    batch = AckBatch(acks=[], view_id=0)
    assert data_origin(fwd) == 2
    assert data_origin(batch) is None


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FSRConfig(t=-1)
    with pytest.raises(ConfigurationError):
        FSRConfig(segment_size=0)
    with pytest.raises(ConfigurationError):
        FSRConfig(max_piggybacked_acks=0)


def test_config_effective_t_clamps():
    config = FSRConfig(t=3)
    assert config.effective_t(2) == 1
    assert config.effective_t(10) == 3
    with pytest.raises(ConfigurationError):
        config.effective_t(0)
