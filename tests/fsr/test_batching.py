"""Tests for the message-packing wrapper (Friedman/van Renesse [20])."""

import pytest

from repro.core.api import BroadcastListener
from repro.core.batching import BatchingBroadcast, BatchingConfig
from repro.errors import ConfigurationError
from tests.conftest import small_cluster


def _batched_cluster(n=3, config=None):
    cluster = small_cluster(n=n)
    batched = {}
    logs = {pid: [] for pid in range(n)}
    for pid, node in cluster.nodes.items():
        wrapper = BatchingBroadcast(
            cluster.sim, node.protocol, origin=pid, config=config
        )
        wrapper.set_listener(
            BroadcastListener(
                lambda origin, mid, payload, size, p=pid: logs[p].append(
                    (origin, str(mid), payload)
                )
            )
        )
        batched[pid] = wrapper
    cluster.start()
    cluster.run(until=5e-3)
    return cluster, batched, logs


def test_config_validation():
    with pytest.raises(ConfigurationError):
        BatchingConfig(max_batch_bytes=0)
    with pytest.raises(ConfigurationError):
        BatchingConfig(max_batch_messages=0)
    with pytest.raises(ConfigurationError):
        BatchingConfig(max_delay_s=-1)


def test_messages_are_packed_and_unpacked_in_order():
    cluster, batched, logs = _batched_cluster()
    for i in range(10):
        batched[1].broadcast(f"a{i}".encode())
    batched[1].flush()
    cluster.run_until(lambda: all(len(log) == 10 for log in logs.values()),
                      max_time_s=30)
    reference = logs[0]
    assert [p for _, _, p in reference] == [f"a{i}".encode() for i in range(10)]
    assert all(log == reference for log in logs.values())
    # All ten rode in one pack.
    assert batched[1].stats_packs_sent == 1
    assert batched[1].stats_messages_packed == 10


def test_total_order_across_packing_origins():
    cluster, batched, logs = _batched_cluster()
    for i in range(6):
        batched[0].broadcast(f"x{i}".encode())
        batched[2].broadcast(f"y{i}".encode())
    for pid in (0, 2):
        batched[pid].flush()
    cluster.run_until(lambda: all(len(log) == 12 for log in logs.values()),
                      max_time_s=30)
    reference = logs[0]
    assert all(log == reference for log in logs.values())


def test_size_trigger_flushes_without_timer():
    config = BatchingConfig(max_batch_bytes=2_000, max_delay_s=10.0)
    cluster, batched, logs = _batched_cluster(config=config)
    for _ in range(5):
        batched[1].broadcast(b"x" * 600)  # 4 entries exceed 2 000 B
    # The first four messages flush on size, long before the 10 s timer.
    cluster.run_until(lambda: all(len(log) == 4 for log in logs.values()),
                      max_time_s=5)
    assert batched[1].stats_packs_sent == 1
    # The dangling fifth message needs an explicit flush.
    batched[1].flush()
    cluster.run_until(lambda: all(len(log) == 5 for log in logs.values()),
                      max_time_s=5)


def test_count_trigger():
    config = BatchingConfig(max_batch_messages=4, max_delay_s=10.0)
    cluster, batched, logs = _batched_cluster(config=config)
    for i in range(8):
        batched[2].broadcast(b"m")
    cluster.run_until(lambda: all(len(log) == 8 for log in logs.values()),
                      max_time_s=5)
    assert batched[2].stats_packs_sent == 2


def test_timer_trigger_flushes_partial_pack():
    config = BatchingConfig(max_batch_bytes=10**6, max_delay_s=1e-3)
    cluster, batched, logs = _batched_cluster(config=config)
    batched[1].broadcast(b"lonely")
    cluster.run_until(lambda: all(len(log) == 1 for log in logs.values()),
                      max_time_s=5)
    assert logs[0][0][2] == b"lonely"


def test_message_ids_are_per_origin_unique():
    cluster, batched, logs = _batched_cluster()
    ids = [batched[1].broadcast(b"z") for _ in range(5)]
    assert len(set(ids)) == 5
    assert all(mid.origin == 1 for mid in ids)


def test_throughput_gain_for_small_messages():
    """The point of packing: small-message goodput approaches the
    large-message budget."""
    from repro import ClusterConfig, FSRConfig, build_cluster

    def run(batching):
        cluster = build_cluster(
            ClusterConfig(n=3, protocol="fsr", protocol_config=FSRConfig(t=1))
        )
        count = [0]
        senders = {}
        for pid, node in cluster.nodes.items():
            source = node.protocol
            if batching:
                source = BatchingBroadcast(cluster.sim, source, origin=pid)
            senders[pid] = source
        senders[0].set_listener(
            BroadcastListener(lambda *a: count.__setitem__(0, count[0] + 1))
        )
        cluster.start()
        cluster.run(until=0.05)
        start = cluster.sim.now
        messages = 1_000
        for i in range(messages):
            senders[1].broadcast(b"x" * 1_000)
        if batching:
            senders[1].flush()
        cluster.run_until(lambda: count[0] >= messages, max_time_s=300)
        return messages * 1_000 * 8 / (cluster.sim.now - start) / 1e6

    plain = run(batching=False)
    packed = run(batching=True)
    # The per-byte middleware cost remains; packing amortises the
    # per-message fixed costs (headers, acks, CPU passes) — worth >2x
    # for 1 KB messages on the calibrated host model.
    assert packed > 2.0 * plain, (plain, packed)
