"""Unit tests for the forward-list fairness scheduler (paper Figure 5)."""

from repro.core.fsr.fairness import FairSendScheduler
from repro.core.fsr.messages import FwdData
from repro.types import MessageId


def fwd(origin, local=1):
    return FwdData(
        message_id=MessageId(origin=origin, local_seq=local),
        origin=origin,
        payload=None,
        payload_size=100,
        view_id=0,
    )


def test_fifo_without_own_messages():
    scheduler = FairSendScheduler()
    a, b = fwd(1), fwd(2)
    scheduler.enqueue_forward(a)
    scheduler.enqueue_forward(b)
    assert scheduler.pop_next() is a
    assert scheduler.pop_next() is b
    assert scheduler.pop_next() is None


def test_paper_figure5_scenario():
    """Buffer holds p2, p4, p3, p3; forward list {p1, p4, p5}: the
    process forwards p2 and p3 first, then sends its own message."""
    scheduler = FairSendScheduler()
    m3p2 = fwd(2, 3)
    m2p4 = fwd(4, 2)
    m5p3 = fwd(3, 5)
    m6p3 = fwd(3, 6)
    for message in (m3p2, m2p4, m5p3, m6p3):
        scheduler.enqueue_forward(message)
    # Pre-populate the forward list as in the figure.
    scheduler._forward_list.update({1, 4, 5})
    own = fwd(9, 1)
    scheduler.enqueue_own(own)

    assert scheduler.pop_next() is m3p2  # p2 unserved
    assert scheduler.pop_next() is m5p3  # p3 unserved
    assert scheduler.pop_next() is own   # all buffered origins served
    # Forward list reset; FIFO resumes with what is left.
    assert scheduler.pop_next() is m2p4
    assert scheduler.pop_next() is m6p3


def test_own_goes_first_when_nothing_unserved():
    scheduler = FairSendScheduler()
    own = fwd(9)
    scheduler.enqueue_own(own)
    assert scheduler.pop_next() is own


def test_own_injection_resets_forward_list():
    scheduler = FairSendScheduler()
    scheduler.enqueue_forward(fwd(1))
    assert scheduler.pop_next().origin == 1
    assert scheduler.forward_list() == {1}
    scheduler.enqueue_own(fwd(9))
    scheduler.pop_next()
    assert scheduler.forward_list() == set()


def test_no_starvation_alternation():
    """A sender with a continuous own stream still forwards every other
    origin once per window — nobody is starved."""
    scheduler = FairSendScheduler()
    sent = []
    for round_index in range(30):
        scheduler.enqueue_forward(fwd(1, round_index * 2))
        scheduler.enqueue_forward(fwd(2, round_index * 2 + 1))
        scheduler.enqueue_own(fwd(9, round_index))
        message = scheduler.pop_next()
        sent.append(message.origin)
    counts = {origin: sent.count(origin) for origin in (1, 2, 9)}
    assert counts[9] >= 9          # own traffic flows
    assert counts[1] >= 9          # both foreign origins flow too
    assert counts[2] >= 9


def test_unfair_mode_prefers_own():
    scheduler = FairSendScheduler(fairness=False)
    scheduler.enqueue_forward(fwd(1))
    scheduler.enqueue_own(fwd(9))
    assert scheduler.pop_next().origin == 9
    assert scheduler.pop_next().origin == 1


def test_drain_empties_everything():
    scheduler = FairSendScheduler()
    scheduler.enqueue_forward(fwd(1))
    scheduler.enqueue_own(fwd(9))
    drained = scheduler.drain()
    assert len(drained) == 2
    assert scheduler.pending == 0
    assert scheduler.pop_next() is None


def test_pending_counters():
    scheduler = FairSendScheduler()
    scheduler.enqueue_forward(fwd(1))
    scheduler.enqueue_forward(fwd(2))
    scheduler.enqueue_own(fwd(9))
    assert scheduler.pending == 3
    assert scheduler.pending_forward == 2
    assert scheduler.pending_own == 1
