"""Unit tests for segmentation and reassembly (paper §4.1)."""

import pytest

from repro.core.fsr.segmentation import Reassembler, Segment, split_payload
from repro.errors import ProtocolError
from repro.types import MessageId


MID = MessageId(origin=0, local_seq=1)


def test_small_payload_is_single_segment():
    segments = split_payload(MID, b"abc", 3, segment_size=10)
    assert len(segments) == 1
    assert segments[0].count == 1
    assert segments[0].payload == b"abc"


def test_none_segment_size_disables_splitting():
    segments = split_payload(MID, None, 1_000_000, segment_size=None)
    assert len(segments) == 1


def test_bytes_payload_split_and_sizes():
    payload = bytes(range(256)) * 10  # 2560 bytes
    segments = split_payload(MID, payload, len(payload), segment_size=1000)
    assert [s.size_bytes for s in segments] == [1000, 1000, 560]
    assert all(s.count == 3 for s in segments)
    assert b"".join(s.payload for s in segments) == payload


def test_opaque_payload_rides_first_segment():
    marker = object()
    segments = split_payload(MID, marker, 2500, segment_size=1000)
    assert segments[0].payload is marker
    assert segments[1].payload is None
    assert sum(s.size_bytes for s in segments) == 2500


def test_negative_size_rejected():
    with pytest.raises(ProtocolError):
        split_payload(MID, b"", -1, segment_size=10)


def test_reassembly_round_trip():
    payload = b"x" * 3500
    segments = split_payload(MID, payload, 3500, segment_size=1000)
    reassembler = Reassembler()
    results = [reassembler.on_segment(s) for s in segments]
    assert results[:-1] == [None, None, None]
    rebuilt, size = results[-1]
    assert rebuilt == payload
    assert size == 3500
    assert reassembler.incomplete_count == 0


def test_reassembly_out_of_order():
    payload = b"abcdefghij" * 100
    segments = split_payload(MID, payload, 1000, segment_size=300)
    reassembler = Reassembler()
    order = [2, 0, 3, 1]
    results = [reassembler.on_segment(segments[i]) for i in order]
    completed = [r for r in results if r is not None]
    assert len(completed) == 1
    assert completed[0][0] == payload


def test_single_segment_completes_immediately():
    reassembler = Reassembler()
    segment = Segment(app_message_id=MID, index=0, count=1, payload=b"x", size_bytes=1)
    assert reassembler.on_segment(segment) == (b"x", 1)


def test_duplicate_segment_rejected():
    segments = split_payload(MID, b"x" * 200, 200, segment_size=100)
    reassembler = Reassembler()
    reassembler.on_segment(segments[0])
    with pytest.raises(ProtocolError):
        reassembler.on_segment(segments[0])


def test_count_mismatch_rejected():
    reassembler = Reassembler()
    reassembler.on_segment(
        Segment(app_message_id=MID, index=0, count=3, payload=b"a", size_bytes=1)
    )
    with pytest.raises(ProtocolError):
        reassembler.on_segment(
            Segment(app_message_id=MID, index=1, count=4, payload=b"b", size_bytes=1)
        )


def test_interleaved_messages_reassemble_independently():
    mid_a = MessageId(origin=0, local_seq=1)
    mid_b = MessageId(origin=1, local_seq=1)
    seg_a = split_payload(mid_a, b"A" * 200, 200, segment_size=100)
    seg_b = split_payload(mid_b, b"B" * 200, 200, segment_size=100)
    reassembler = Reassembler()
    assert reassembler.on_segment(seg_a[0]) is None
    assert reassembler.on_segment(seg_b[0]) is None
    done_b = reassembler.on_segment(seg_b[1])
    assert done_b == (b"B" * 200, 200)
    done_a = reassembler.on_segment(seg_a[1])
    assert done_a == (b"A" * 200, 200)
