"""Unit tests for ring geometry and roles."""

import pytest

from repro.core.fsr import Ring, Role
from repro.errors import ConfigurationError
from repro.types import View


def test_roles():
    ring = Ring(members=(10, 11, 12, 13, 14), t=2)
    assert ring.role_of(10) is Role.LEADER
    assert ring.role_of(11) is Role.BACKUP
    assert ring.role_of(12) is Role.BACKUP
    assert ring.role_of(13) is Role.STANDARD
    assert ring.role_of(14) is Role.STANDARD
    assert ring.leader == 10
    assert ring.last_backup == 12


def test_t_zero_leader_is_stability_point():
    ring = Ring(members=(0, 1, 2), t=0)
    assert ring.last_backup == ring.leader


def test_successor_predecessor_wrap():
    ring = Ring(members=(5, 6, 7), t=1)
    assert ring.successor(7) == 5
    assert ring.predecessor(5) == 7
    assert ring.successor(5) == 6


def test_from_view_clamps_t():
    view = View(view_id=3, members=(0, 1))
    ring = Ring.from_view(view, t=5)
    assert ring.t == 1


def test_position_and_at():
    ring = Ring(members=(3, 1, 4), t=0)
    assert ring.position_of(4) == 2
    assert ring.at(5) == 4  # modulo
    with pytest.raises(ConfigurationError):
        ring.position_of(99)


def test_invalid_rings_rejected():
    with pytest.raises(ConfigurationError):
        Ring(members=(), t=0)
    with pytest.raises(ConfigurationError):
        Ring(members=(0, 1), t=2)
    with pytest.raises(ConfigurationError):
        Ring(members=(0, 0), t=0)


def test_latency_formula_values():
    ring = Ring(members=tuple(range(5)), t=1)
    # Paper formula: L(i) = 2n + t - i - 1 for i >= 1.
    assert ring.latency_rounds(1) == 2 * 5 + 1 - 1 - 1
    assert ring.latency_rounds(4) == 2 * 5 + 1 - 4 - 1
    # Leader special case: n + t - 1.
    assert ring.latency_rounds(0) == 5 + 1 - 1


def test_latency_formula_degenerate():
    assert Ring(members=(0,), t=0).latency_rounds(0) == 0


def test_latency_decreases_with_position():
    """Senders closer to the leader (larger i) complete sooner."""
    ring = Ring(members=tuple(range(8)), t=2)
    latencies = [ring.latency_rounds(i) for i in range(1, 8)]
    assert latencies == sorted(latencies, reverse=True)
