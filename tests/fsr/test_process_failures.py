"""FSR fault-tolerance tests: crashes, view changes, recovery.

Uniform total order must survive any ``t`` crashes; these tests crash
leaders, backups, standard processes — alone and in combination, at
awkward moments — and run the full checker battery on the outcome.
"""

import pytest

from repro.checker import (
    check_integrity,
    check_sequence_consistency,
    check_total_order,
    check_uniformity,
)
from repro.core.fsr import FSRConfig
from tests.conftest import small_cluster


def _run_with_crashes(n, t, crashes, plan, max_time_s=60.0):
    """Inject ``plan`` broadcasts, crash per schedule, run to quiescence."""
    cluster = small_cluster(n=n, protocol_config=FSRConfig(t=t))
    cluster.start()
    cluster.run(until=5e-3)
    expected_from_correct = 0
    crashed_pids = {pid for pid, _ in crashes}
    for sender, count, size in plan:
        for _ in range(count):
            cluster.broadcast(sender, size_bytes=size)
        if sender not in crashed_pids:
            expected_from_correct += count
    for pid, at in crashes:
        cluster.schedule_crash(pid, time=at)
    # Correct senders' messages must all complete (validity).
    cluster.run_until(
        lambda: all(
            sum(
                1
                for d in cluster.nodes[node].app_deliveries
                if d.origin not in crashed_pids
            )
            >= expected_from_correct
            for node in cluster.nodes
            if node not in cluster.injector.crashed()
        ),
        step_s=10e-3,
        max_time_s=max_time_s,
    )
    cluster.run(until=cluster.sim.now + 20e-3)
    return cluster.results()


def _assert_uniform(result):
    check_integrity(result)
    check_total_order(result)
    check_sequence_consistency(result)
    check_uniformity(result)


@pytest.mark.parametrize("victim", [0, 1, 3])
def test_single_crash_any_role(victim):
    """Leader (0), backup (1), or standard (3) crash mid-stream."""
    result = _run_with_crashes(
        n=5, t=1,
        crashes=[(victim, 0.03)],
        plan=[(pid, 6, 5_000) for pid in range(5)],
    )
    _assert_uniform(result)
    survivors = [p for p in range(5) if p != victim]
    logs = {p: [str(d.message_id) for d in result.delivery_logs[p].deliveries]
            for p in survivors}
    reference = logs[survivors[0]]
    assert all(log == reference for log in logs.values())


def test_crash_with_t2_two_failures():
    result = _run_with_crashes(
        n=6, t=2,
        crashes=[(0, 0.03), (1, 0.05)],
        plan=[(pid, 5, 5_000) for pid in range(6)],
    )
    _assert_uniform(result)


def test_leader_and_backup_crash_simultaneously():
    result = _run_with_crashes(
        n=6, t=2,
        crashes=[(0, 0.04), (1, 0.0401)],
        plan=[(pid, 5, 5_000) for pid in range(6)],
    )
    _assert_uniform(result)


def test_sender_crash_loses_only_its_own_tail():
    """A crashed sender's unsequenced messages may vanish, but nothing
    else may, and whatever of its messages any survivor delivered must
    be delivered by all (uniformity)."""
    result = _run_with_crashes(
        n=5, t=1,
        crashes=[(4, 0.03)],
        plan=[(pid, 8, 5_000) for pid in range(5)],
    )
    _assert_uniform(result)
    survivors = [p for p in range(5) if p != 4]
    for origin_alive in (0, 1, 2, 3):
        for survivor in survivors:
            delivered = [
                d for d in result.app_deliveries[survivor]
                if d.origin == origin_alive
            ]
            assert len(delivered) == 8, (
                f"correct sender {origin_alive}'s messages incomplete at "
                f"{survivor}"
            )


def test_crash_during_burst_of_large_messages():
    result = _run_with_crashes(
        n=4, t=1,
        crashes=[(0, 0.05)],
        plan=[(pid, 4, 50_000) for pid in range(4)],
        max_time_s=120.0,
    )
    _assert_uniform(result)


def test_successive_view_changes():
    """Crash one process, let the system recover, crash another."""
    result = _run_with_crashes(
        n=6, t=2,
        crashes=[(2, 0.03), (0, 0.12)],
        plan=[(pid, 6, 5_000) for pid in range(6)],
        max_time_s=120.0,
    )
    _assert_uniform(result)


def test_crash_all_but_one():
    """n-1 crashes with t = n-1: the last process still makes progress."""
    result = _run_with_crashes(
        n=3, t=2,
        crashes=[(0, 0.03), (1, 0.06)],
        plan=[(pid, 5, 2_000) for pid in range(3)],
        max_time_s=120.0,
    )
    _assert_uniform(result)
    assert len(result.app_deliveries[2]) >= 5


def test_crashed_process_log_is_prefix():
    """A crashed process's delivery log is a prefix of the survivors'."""
    result = _run_with_crashes(
        n=5, t=1,
        crashes=[(2, 0.04)],
        plan=[(pid, 6, 5_000) for pid in range(5)],
    )
    crashed_log = [str(d.message_id) for d in result.delivery_logs[2].deliveries]
    survivor_log = [str(d.message_id) for d in result.delivery_logs[0].deliveries]
    assert crashed_log == survivor_log[: len(crashed_log)]


def test_recovery_with_segmentation():
    """Crash mid-stream while large messages are segmented."""
    cluster = small_cluster(
        n=4, protocol_config=FSRConfig(t=1, segment_size=5_000)
    )
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(4):
        for _ in range(3):
            cluster.broadcast(pid, size_bytes=18_000)
    cluster.schedule_crash(3, time=0.05)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 3) >= 9
            for p in (0, 1, 2)
        ),
        max_time_s=120.0,
    )
    result = cluster.results()
    _assert_uniform(result)


def test_view_change_continues_sequences_monotonically():
    result = _run_with_crashes(
        n=5, t=1,
        crashes=[(0, 0.04)],
        plan=[(pid, 6, 5_000) for pid in range(5)],
    )
    for pid, log in result.delivery_logs.items():
        sequences = [d.sequence for d in log.deliveries]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
