"""Tests for the ack transport policies (paper §4.2.2)."""

import pytest

from repro.checker import check_all
from repro.core.fsr import FSRConfig
from tests.conftest import run_broadcasts, small_cluster


def test_eager_ack_mode_is_still_correct():
    """Disabling piggy-backing changes costs, never correctness."""
    cluster = small_cluster(
        n=5, protocol_config=FSRConfig(t=1, piggyback_acks=False)
    )
    result = run_broadcasts(cluster, [(pid, 6, 5_000) for pid in range(5)])
    check_all(result)


def test_eager_mode_sends_one_ack_per_message():
    cluster = small_cluster(
        n=4, protocol_config=FSRConfig(t=1, piggyback_acks=False)
    )
    run_broadcasts(cluster, [(1, 5, 5_000)])
    piggy = sum(n.protocol.stats_acks_piggybacked for n in cluster.nodes.values())
    standalone = sum(
        n.protocol.stats_acks_standalone for n in cluster.nodes.values()
    )
    assert piggy == 0
    # Each of the 5 messages generates an ack that travels several hops;
    # every hop is a standalone send in this mode.
    assert standalone >= 5 * 3


def test_max_piggybacked_acks_cap_respected():
    cluster = small_cluster(
        n=4,
        protocol_config=FSRConfig(t=1, max_piggybacked_acks=2),
        trace=True,
    )
    result = run_broadcasts(cluster, [(pid, 8, 2_000) for pid in range(4)])
    check_all(result)
    # Inspect actual wire traffic: no data message carried more than 2.
    from repro.core.fsr.messages import FwdData, SeqData

    # The trace does not keep payload objects; assert via stats balance:
    # piggybacked + standalone acks must equal total acks produced, and
    # the run must have used standalone batches (cap forces overflow).
    standalone = sum(
        n.protocol.stats_acks_standalone for n in cluster.nodes.values()
    )
    assert standalone > 0


def test_piggybacked_acks_do_not_delay_delivery_order():
    """Same delivery order whichever ack policy is used (same seed)."""
    def run(piggyback):
        cluster = small_cluster(
            n=4, protocol_config=FSRConfig(t=1, piggyback_acks=piggyback)
        )
        result = run_broadcasts(cluster, [(pid, 5, 3_000) for pid in range(4)])
        return [str(d.message_id) for d in result.delivery_logs[0].deliveries]

    order_on = run(True)
    order_off = run(False)
    assert sorted(order_on) == sorted(order_off)  # same set either way


def test_idle_latency_not_penalised_by_piggybacking():
    """§4.2.2: under low load acks go out immediately, so a lone
    broadcast completes in ring time, not after a piggyback timeout."""
    from repro.analysis import fsr_contention_free_latency_s
    from repro.net import NetworkParams

    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    start = cluster.sim.now
    mid = cluster.broadcast(2, size_bytes=5_000)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=10)
    latency = cluster.results().completion_time(mid) - start
    # Small message on the fast test network: milliseconds, not a
    # piggyback-wait artifact.
    assert latency < 10e-3
