"""Unit tests for flush-state merging (view-change recovery)."""

import pytest

from repro.core.fsr.recovery import (
    FSRFlushState,
    RetainedMessage,
    merge_flush_states,
)
from repro.errors import ProtocolError
from repro.types import MessageId


def record(seq, origin=0, local=None):
    return RetainedMessage(
        message_id=MessageId(origin=origin, local_seq=local if local is not None else seq),
        origin=origin,
        sequence=seq,
        payload=None,
        payload_size=100,
    )


def state(last, records=(), fresh=False, watermark=0):
    return FSRFlushState(
        last_delivered=last,
        watermark=watermark,
        records={r.sequence: r for r in records},
        fresh=fresh,
    )


def test_merge_union_and_next_sequence():
    merged = merge_flush_states({
        0: state(2, [record(3), record(4)]),
        1: state(4, [record(3), record(4), record(5)]),
    })
    assert merged.next_sequence == 6
    assert set(merged.records) == {3, 4, 5}
    assert merged.orphaned == set()
    assert merged.min_last_delivered == 2
    assert merged.max_last_delivered == 4


def test_gap_beyond_max_last_orphans_tail():
    merged = merge_flush_states({
        0: state(2, [record(3), record(5), record(6)]),
        1: state(3, [record(3)]),
    })
    # 4 is missing: 5 and 6 were never deliverable anywhere.
    assert merged.next_sequence == 4
    assert set(merged.records) == {3}
    assert {m.local_seq for m in merged.orphaned} == {5, 6}


def test_gap_within_delivered_range_raises():
    with pytest.raises(ProtocolError):
        merge_flush_states({
            0: state(1, []),
            1: state(3, [record(3)]),  # nobody retains 2
        })


def test_conflicting_assignment_raises():
    with pytest.raises(ProtocolError):
        merge_flush_states({
            0: state(0, [record(1, origin=1)]),
            1: state(0, [record(1, origin=2)]),
        })


def test_mislabelled_record_raises():
    bad = record(3)
    with pytest.raises(ProtocolError):
        merge_flush_states({0: FSRFlushState(0, 0, {4: bad})})


def test_fresh_states_do_not_drag_min_down():
    merged = merge_flush_states({
        0: state(10, [record(11)]),
        7: state(0, [], fresh=True),  # joiner with no history
    })
    assert merged.min_last_delivered == 10
    assert merged.next_sequence == 12


def test_all_fresh_bootstraps_empty():
    merged = merge_flush_states({
        0: state(0, fresh=True),
        1: state(0, fresh=True),
    })
    assert merged.next_sequence == 1
    assert merged.records == {}


def test_empty_states_rejected():
    with pytest.raises(ProtocolError):
        merge_flush_states({})


def test_flush_state_size_accounts_payloads():
    s = state(0, [record(1), record(2)])
    assert s.size_bytes() > 200  # two 100-byte payloads plus overhead
