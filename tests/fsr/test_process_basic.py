"""Behavioural tests of the FSR automaton on a simulated cluster.

Each test exercises one of the paper's §4.1 delivery cases or one of
the protocol mechanisms (piggy-backing, watermark GC, segmentation)
end to end on the DES stack.
"""

import pytest

from repro.checker import check_all
from repro.core.fsr import FSRConfig
from tests.conftest import run_broadcasts, small_cluster


def _orders(result):
    return {
        pid: [str(d.message_id) for d in log.deliveries]
        for pid, log in result.delivery_logs.items()
    }


def test_standard_sender_case():
    """Paper case 1: a standard process (position > t) broadcasts."""
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(3, 1, 1000)])
    check_all(result)
    orders = _orders(result)
    assert all(order == ["m3.1"] for order in orders.values())


def test_backup_sender_case():
    """Paper case 2: a backup process (0 < position <= t) broadcasts."""
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=2))
    result = run_broadcasts(cluster, [(2, 1, 1000)])
    check_all(result)
    assert all(len(log) == 1 for log in result.delivery_logs.values())


def test_leader_sender_case():
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(0, 1, 1000)])
    check_all(result)
    assert all(len(log) == 1 for log in result.delivery_logs.values())


def test_t_zero():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=0))
    result = run_broadcasts(cluster, [(2, 3, 1000), (0, 2, 1000)])
    check_all(result)


def test_two_process_ring():
    cluster = small_cluster(n=2, protocol_config=FSRConfig(t=1))
    result = run_broadcasts(cluster, [(0, 2, 1000), (1, 2, 1000)])
    check_all(result)
    assert all(len(log) == 4 for log in result.delivery_logs.values())


def test_single_process_group():
    cluster = small_cluster(n=1, protocol_config=FSRConfig(t=0))
    result = run_broadcasts(cluster, [(0, 5, 1000)])
    check_all(result)
    assert len(result.delivery_logs[0]) == 5


def test_all_senders_identical_order():
    cluster = small_cluster(n=5)
    result = run_broadcasts(cluster, [(pid, 4, 2000) for pid in range(5)])
    check_all(result)
    orders = _orders(result)
    reference = orders[0]
    assert len(reference) == 20
    assert all(order == reference for order in orders.values())


def test_sequences_are_contiguous_from_one():
    cluster = small_cluster(n=3)
    result = run_broadcasts(cluster, [(1, 3, 500), (2, 2, 500)])
    for log in result.delivery_logs.values():
        assert [d.sequence for d in log.deliveries] == [1, 2, 3, 4, 5]


def test_piggybacking_dominates_under_load():
    cluster = small_cluster(n=4)
    run_broadcasts(cluster, [(pid, 10, 50_000) for pid in range(4)])
    piggy = sum(node.protocol.stats_acks_piggybacked for node in cluster.nodes.values())
    standalone = sum(
        node.protocol.stats_acks_standalone for node in cluster.nodes.values()
    )
    assert piggy > standalone


def test_standalone_acks_when_idle():
    """A single quiet broadcast has nothing to piggy-back on."""
    cluster = small_cluster(n=4)
    run_broadcasts(cluster, [(2, 1, 1000)])
    standalone = sum(
        node.protocol.stats_acks_standalone for node in cluster.nodes.values()
    )
    assert standalone >= 1


def test_piggybacking_can_be_disabled():
    cluster = small_cluster(n=4, protocol_config=FSRConfig(t=1, piggyback_acks=False))
    result = run_broadcasts(cluster, [(pid, 5, 20_000) for pid in range(4)])
    check_all(result)
    piggy = sum(node.protocol.stats_acks_piggybacked for node in cluster.nodes.values())
    assert piggy == 0


def test_watermark_gc_bounds_retention():
    """Retained records are garbage-collected behind the watermark."""
    cluster = small_cluster(n=4)
    run_broadcasts(cluster, [(pid, 15, 5_000) for pid in range(4)])
    for node in cluster.nodes.values():
        # 60 messages went through; retention stays near the ring lag.
        assert node.protocol.retained_count < 60
        assert node.protocol.watermark > 0


def test_segmentation_end_to_end():
    cluster = small_cluster(
        n=3, protocol_config=FSRConfig(t=1, segment_size=10_000)
    )
    cluster.start()
    cluster.run(until=5e-3)
    payload = bytes(range(256)) * 150  # 38 400 bytes -> 4 segments
    cluster.broadcast(1, payload=payload)
    cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=10)
    result = cluster.results()
    # Protocol level: four segment deliveries everywhere.
    assert all(len(log) == 4 for log in result.delivery_logs.values())
    # Application level: one reassembled message everywhere.
    for pid, deliveries in result.app_deliveries.items():
        assert len(deliveries) == 1
        assert deliveries[0].size_bytes == len(payload)


def test_segmented_and_small_messages_interleave():
    cluster = small_cluster(
        n=4, protocol_config=FSRConfig(t=1, segment_size=8_000)
    )
    cluster.start()
    cluster.run(until=5e-3)
    cluster.broadcast(1, size_bytes=50_000)   # 7 segments
    cluster.broadcast(2, size_bytes=1_000)    # 1 segment
    cluster.broadcast(3, size_bytes=30_000)   # 4 segments
    cluster.run_until(lambda: cluster.all_correct_delivered(3), max_time_s=10)
    result = cluster.results()
    check_all(result)
    assert all(len(v) == 3 for v in result.app_deliveries.values())


def test_broadcast_requires_start():
    cluster = small_cluster(n=2)
    from repro.errors import ProtocolError

    with pytest.raises(Exception):
        cluster.broadcast(0, size_bytes=10)


def test_large_message_size_accounting():
    cluster = small_cluster(n=3)
    result = run_broadcasts(cluster, [(0, 1, 77_777)])
    delivery = result.delivery_logs[1].deliveries[0]
    assert delivery.size_bytes == 77_777
