"""Unit tests for the hold-back delivery queue."""

import pytest

from repro.core.fsr.holdback import HoldbackEntry, HoldbackQueue
from repro.errors import ProtocolError
from repro.types import MessageId


def entry(seq, origin=0, local=None):
    return HoldbackEntry(
        sequence=seq,
        message_id=MessageId(origin=origin, local_seq=local if local is not None else seq),
        payload=None,
        payload_size=0,
    )


def test_in_order_release():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    assert queue.mark_deliverable(entry(1)) == 1
    assert queue.mark_deliverable(entry(2)) == 1
    assert released == [1, 2]


def test_gap_blocks_until_filled():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    queue.mark_deliverable(entry(2))
    queue.mark_deliverable(entry(3))
    assert released == []
    assert queue.held_count == 2
    assert queue.mark_deliverable(entry(1)) == 3
    assert released == [1, 2, 3]
    assert queue.held_count == 0


def test_duplicate_same_message_ignored():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    queue.mark_deliverable(entry(1))
    assert queue.mark_deliverable(entry(1)) == 0
    assert released == [1]


def test_conflicting_assignment_raises():
    queue = HoldbackQueue(on_deliver=lambda e: None)
    queue.mark_deliverable(entry(5, origin=1))
    with pytest.raises(ProtocolError):
        queue.mark_deliverable(entry(5, origin=2))


def test_below_watermark_is_noop():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    queue.mark_deliverable(entry(1))
    assert queue.mark_deliverable(entry(1, origin=9)) == 0  # even conflicting
    assert released == [1]


def test_fast_forward_skips_and_flushes():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    queue.mark_deliverable(entry(5))
    queue.mark_deliverable(entry(6))
    queue.fast_forward(5)
    assert released == [5, 6]
    assert queue.next_sequence == 7


def test_fast_forward_cannot_rewind():
    queue = HoldbackQueue(on_deliver=lambda e: None)
    queue.mark_deliverable(entry(1))
    with pytest.raises(ProtocolError):
        queue.fast_forward(1)


def test_clear_held_discards_blocked_entries():
    released = []
    queue = HoldbackQueue(on_deliver=lambda e: released.append(e.sequence))
    queue.mark_deliverable(entry(3))
    queue.mark_deliverable(entry(4))
    assert queue.clear_held() == 2
    queue.fast_forward(3)
    assert released == []
    # Sequence 3 can now be bound to a different message without error.
    queue.mark_deliverable(entry(3, origin=7))
    assert released == [3]


def test_counters():
    queue = HoldbackQueue(on_deliver=lambda e: None)
    queue.mark_deliverable(entry(1))
    queue.mark_deliverable(entry(2))
    queue.mark_deliverable(entry(9))
    assert queue.delivered_count == 2
    assert queue.last_delivered == 2
    assert queue.held_sequences() == [9]
