"""Tests for FSR's coordinator-side state merge and install pruning."""

import pytest

from repro.core.fsr import FSRConfig
from repro.core.fsr.recovery import FSRFlushState, MergedRecovery, RetainedMessage
from repro.types import MessageId
from repro.vsc.membership import FlushState
from tests.conftest import run_broadcasts, small_cluster


def _record(seq, origin=0):
    return RetainedMessage(
        message_id=MessageId(origin=origin, local_seq=seq),
        origin=origin,
        sequence=seq,
        payload=None,
        payload_size=1_000,
    )


def _wrap(last, records=(), fresh=False):
    state = FSRFlushState(
        last_delivered=last,
        watermark=0,
        records={r.sequence: r for r in records},
        fresh=fresh,
    )
    return FlushState(payload=state, size_bytes=state.size_bytes())


def _fsr_process():
    cluster = small_cluster(n=3)
    cluster.start()
    cluster.run(until=5e-3)
    return cluster.nodes[0].protocol


def test_merge_states_prunes_per_receiver():
    process = _fsr_process()
    states = {
        0: _wrap(8, [_record(s) for s in range(5, 11)]),
        1: _wrap(4, [_record(s) for s in range(5, 11)]),
        2: _wrap(10, []),
    }
    payloads = process.merge_states(states, receivers=(0, 1, 2))
    # Receiver 0 (delivered 8) needs only 9, 10.
    assert sorted(payloads[0].payload.records) == [9, 10]
    # Receiver 1 (delivered 4, the minimum) needs 5..10.
    assert sorted(payloads[1].payload.records) == [5, 6, 7, 8, 9, 10]
    # Receiver 2 already has everything.
    assert payloads[2].payload.records == {}
    # Install sizes reflect the pruning.
    assert payloads[2].size_bytes < payloads[0].size_bytes < payloads[1].size_bytes
    # All receivers agree on the resumption point.
    assert all(p.payload.next_sequence == 11 for p in payloads.values())


def test_merge_states_fresh_receiver_gets_full_tail():
    process = _fsr_process()
    states = {
        0: _wrap(8, [_record(s) for s in range(5, 9)]),
        7: _wrap(0, [], fresh=True),
    }
    payloads = process.merge_states(states, receivers=(0, 7))
    # The joiner starts at min_last (8 here): no history for it.
    assert payloads[7].payload.records == {}
    assert payloads[7].payload.min_last_delivered == 8


def test_collect_flush_state_only_holders_ship_records():
    """Leader and backups contribute records; standard processes do not."""
    cluster = small_cluster(n=5, protocol_config=FSRConfig(t=1))
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(4):
            cluster.broadcast(pid, size_bytes=5_000)
    # Collect mid-flight, before the watermark garbage-collects the
    # retained records (a quiescent system retains nothing).
    cluster.run_until(
        lambda: cluster.nodes[0].protocol.last_delivered_sequence >= 3,
        step_s=0.5e-3,
        max_time_s=30,
    )

    backup_state = cluster.nodes[1].protocol.collect_flush_state()
    standard_state = cluster.nodes[3].protocol.collect_flush_state()
    # The backup still retains sequencing decisions (its watermark lags
    # the ring); a standard process never ships records at all, even
    # though its internal retention mirrors the backup's.
    assert backup_state.payload.records, "backup retains sequencing decisions"
    assert cluster.nodes[3].protocol.retained_count > 0
    assert standard_state.payload.records == {}, "standard processes travel light"
    assert standard_state.size_bytes < backup_state.size_bytes
