"""Unit tests for the perfect failure detectors."""

import pytest

from repro.failure import HeartbeatFailureDetector, OracleFailureDetector
from repro.net import ChannelStack, Network, NetworkParams
from repro.net.dispatch import LayerDemux
from repro.sim import Simulator


def test_oracle_reports_after_detection_delay():
    sim = Simulator()
    detector = OracleFailureDetector(sim, owner=0, detection_delay_s=0.05)
    detector.monitor([1, 2])
    suspected_at = []
    detector.on_suspect(lambda pid: suspected_at.append((pid, sim.now)))
    sim.schedule(1.0, detector.notify_crash, 1)
    sim.run()
    assert suspected_at == [(1, pytest.approx(1.05))]
    assert detector.suspected() == {1}


def test_oracle_crash_before_monitoring_still_reported():
    """Strong completeness: crashes predating monitor() are reported."""
    sim = Simulator()
    detector = OracleFailureDetector(sim, owner=0, detection_delay_s=0.01)
    detector.notify_crash(2)
    detector.monitor([1, 2])
    sim.run()
    assert detector.is_suspected(2)


def test_oracle_never_suspects_live_process():
    """Strong accuracy: no crash notification, no suspicion."""
    sim = Simulator()
    detector = OracleFailureDetector(sim, owner=0)
    detector.monitor([1, 2, 3])
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert detector.suspected() == set()


def test_oracle_ignores_own_crash_and_unmonitored():
    sim = Simulator()
    detector = OracleFailureDetector(sim, owner=0, detection_delay_s=0.01)
    detector.monitor([1])
    detector.notify_crash(0)   # own crash: not self-suspected
    detector.notify_crash(5)   # not monitored: remembered, not reported
    sim.run()
    assert detector.suspected() == set()


def _heartbeat_rig(n=3):
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    sim = Simulator()
    net = Network(sim, params)
    detectors = {}
    for node in range(n):
        stack = ChannelStack(sim, net.attach(node), params)
        port = LayerDemux(stack).port("fd")
        detectors[node] = HeartbeatFailureDetector(
            sim, port, interval_s=5e-3, timeout_s=30e-3
        )
        detectors[node].monitor(range(n))
    return sim, net, detectors


def test_heartbeat_no_false_suspicions_on_quiet_network():
    sim, net, detectors = _heartbeat_rig()
    sim.run(until=0.5)
    for detector in detectors.values():
        assert detector.suspected() == set()


def test_heartbeat_detects_crash_within_timeout():
    sim, net, detectors = _heartbeat_rig()
    sim.run(until=0.1)
    net.crash(2)
    detectors[2].stop()
    sim.run(until=0.2)
    assert detectors[0].is_suspected(2)
    assert detectors[1].is_suspected(2)
    assert not detectors[0].is_suspected(1)


def test_heartbeat_callback_fires_once_per_peer():
    sim, net, detectors = _heartbeat_rig()
    events = []
    detectors[0].on_suspect(events.append)
    sim.run(until=0.05)
    net.crash(1)
    detectors[1].stop()
    net.crash(2)
    detectors[2].stop()
    sim.run(until=0.3)
    assert sorted(events) == [1, 2]
