"""Unit tests for the adaptive (EWMA) failure detector."""

import pytest

from repro.failure import AdaptiveFailureDetector, adaptive_floor_s
from repro.net import ChannelStack, Network, NetworkParams
from repro.net.dispatch import LayerDemux
from repro.obs.telemetry import Telemetry
from repro.sim import Simulator

INTERVAL = 5e-3
TIMEOUT = 100e-3


def _rig(n=3, telemetry=None, **kwargs):
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    sim = Simulator()
    net = Network(sim, params)
    detectors = {}
    for node in range(n):
        stack = ChannelStack(sim, net.attach(node), params)
        port = LayerDemux(stack).port("fd")
        detectors[node] = AdaptiveFailureDetector(
            sim, port, interval_s=INTERVAL, timeout_s=TIMEOUT,
            telemetry=telemetry if node == 0 else None, **kwargs
        )
        detectors[node].monitor(range(n))
    return sim, net, detectors


def test_floor_formula():
    # Floor = max(4 heartbeat periods, 35% of the ceiling): one delayed
    # probe can never look like a crash, and the bound keeps meaningful
    # headroom below the completeness ceiling.
    assert adaptive_floor_s(0.1, 1.0) == pytest.approx(0.4)
    assert adaptive_floor_s(0.01, 1.0) == pytest.approx(0.35)
    assert adaptive_floor_s(0.5, 1.0) == pytest.approx(2.0)


def test_ceiling_applies_during_warmup():
    sim, net, detectors = _rig()
    detector = detectors[0]
    assert detector._timeout_for(1) == pytest.approx(TIMEOUT)
    # One gap observed is still warmup.
    detector._note_heartbeat(1, 0.010)
    detector._note_heartbeat(1, 0.015)
    assert detector._timeout_for(1) == pytest.approx(TIMEOUT)


def test_steady_gaps_converge_to_the_floor():
    sim, net, detectors = _rig()
    detector = detectors[0]
    for i in range(50):
        detector._note_heartbeat(1, i * INTERVAL)
    timeout = detector._timeout_for(1)
    # Zero variance: mean + k*std ~= one interval, clamped up to floor.
    assert timeout == pytest.approx(detector.floor_s)
    assert detector.floor_s < TIMEOUT


def test_jittery_gaps_widen_the_timeout():
    sim, net, detectors = _rig(floor_s=1e-4)
    detector = detectors[0]
    now = 0.0
    for i in range(100):
        now += INTERVAL if i % 2 == 0 else 5 * INTERVAL
        detector._note_heartbeat(1, now)
    steady = detectors[1]
    for i in range(100):
        steady._note_heartbeat(0, i * INTERVAL)
    assert detector._timeout_for(1) > steady._timeout_for(0)


def test_timeout_never_exceeds_ceiling():
    sim, net, detectors = _rig(floor_s=1e-4)
    detector = detectors[0]
    now = 0.0
    for i in range(100):
        now += TIMEOUT  # pathological gaps as large as the ceiling
        detector._note_heartbeat(1, now)
    assert detector._timeout_for(1) <= TIMEOUT


def test_no_false_suspicions_on_quiet_network():
    sim, net, detectors = _rig()
    sim.run(until=1.0)
    for detector in detectors.values():
        assert detector.suspected() == set()


def test_detects_crash_within_ceiling():
    sim, net, detectors = _rig()
    sim.run(until=0.2)  # past warmup: the learned timeout is in force
    suspected_at = []
    detectors[0].on_suspect(lambda pid: suspected_at.append((pid, sim.now)))
    net.crash(2)
    detectors[2].stop()
    sim.run(until=0.5)
    assert [pid for pid, _ in suspected_at] == [2]
    (_, at), = suspected_at
    # Completeness: within the ceiling (+1 tick); accuracy bonus: the
    # learned bound on a quiet network detects faster than the ceiling.
    assert at - 0.2 <= TIMEOUT + 2 * INTERVAL
    assert at - 0.2 >= detectors[0].floor_s - 2 * INTERVAL


def test_suspicion_telemetry_gauges():
    telemetry = Telemetry()
    sim, net, detectors = _rig(telemetry=telemetry)
    sim.run(until=0.2)
    snap = telemetry.snapshot()
    assert 0.0 <= snap["gauges"]["fd_suspicion_level"]["value"] < 1.0
    assert snap["gauges"]["fd_timeout_s"]["value"] > 0.0
    net.crash(1)
    detectors[1].stop()
    sim.run(until=0.6)
    assert telemetry.snapshot()["counters"]["fd_suspicions"] >= 1
