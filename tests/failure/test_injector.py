"""Unit tests for the crash injector."""

import pytest

from repro.errors import ConfigurationError
from repro.failure import CrashInjector, OracleFailureDetector
from repro.net import Network, NetworkParams
from repro.sim import Simulator
from repro.sim.trace import TraceLog
from repro.types import CrashEvent


def build(trace=None):
    sim = Simulator()
    net = Network(sim, NetworkParams(cpu_per_message_s=0, cpu_per_byte_s=0))
    net.attach(0)
    net.attach(1)
    return sim, net, CrashInjector(sim, net, trace=trace)


def test_scheduled_crash_silences_network():
    sim, net, injector = build()
    injector.schedule_crash(0, time=1.0)
    sim.run()
    assert net.is_crashed(0)
    assert injector.crashed() == {0}


def test_crash_callbacks_fire_at_crash_instant():
    sim, net, injector = build()
    events = []
    injector.on_crash(lambda pid: events.append((pid, sim.now)))
    injector.schedule_crash(1, time=0.5)
    sim.run()
    assert events == [(1, 0.5)]


def test_detectors_notified():
    sim, net, injector = build()
    detector = OracleFailureDetector(sim, owner=1, detection_delay_s=0.01)
    detector.monitor([0])
    injector.register_detector(detector)
    injector.schedule_crash(0, time=0.2)
    sim.run()
    assert detector.is_suspected(0)


def test_crash_is_idempotent():
    sim, net, injector = build()
    events = []
    injector.on_crash(events.append)
    injector.crash_now(0)
    injector.crash_now(0)
    assert events == [0]


def test_cannot_schedule_in_past():
    sim, net, injector = build()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ConfigurationError):
        injector.schedule_crash(0, time=0.5)


def test_batch_schedule():
    sim, net, injector = build()
    injector.schedule(
        [CrashEvent(process=0, time=0.1), CrashEvent(process=1, time=0.2)]
    )
    sim.run()
    assert injector.crashed() == {0, 1}


def test_duplicate_schedule_is_ignored_with_warning():
    sim, net, injector = build(trace=TraceLog(enabled=True))
    first = injector.schedule_crash(0, time=0.5)
    second = injector.schedule_crash(0, time=0.9)
    # The pending event stands; the duplicate returns it unchanged.
    assert second is first
    warnings = injector.trace.records("injector", "schedule_ignored")
    assert len(warnings) == 1
    assert warnings[0].detail["why"] == "already_scheduled"
    sim.run()
    # Only the first crash fired: node 0 went down at 0.5, once.
    assert injector.crashed() == {0}


def test_schedule_after_crash_is_ignored_with_warning():
    sim, net, injector = build(trace=TraceLog(enabled=True))
    injector.crash_now(0)
    event = injector.schedule_crash(0, time=1.0)
    assert event.reason == "ignored"
    warnings = injector.trace.records("injector", "schedule_ignored")
    assert len(warnings) == 1
    assert warnings[0].detail["why"] == "already_crashed"
    sim.run()
    assert injector.crashed() == {0}


def test_scheduled_lists_pending_crashes_in_firing_order():
    sim, net, injector = build()
    assert injector.scheduled() == ()
    injector.schedule_crash(1, time=0.7)
    injector.schedule_crash(0, time=0.3)
    pending = injector.scheduled()
    assert [(e.process, e.time) for e in pending] == [(0, 0.3), (1, 0.7)]
    sim.run(until=0.5)
    # Executed crashes drop off the pending list.
    assert [(e.process, e.time) for e in injector.scheduled()] == [(1, 0.7)]
    sim.run()
    assert injector.scheduled() == ()
