"""Unit tests for network parameterisation and framing."""

import pytest

from repro.errors import ConfigurationError
from repro.net import FramingModel, NetworkParams


def test_tcp_framing_reproduces_netperf_ceiling():
    """Table 1 of the paper: raw TCP goodput ~94 Mb/s on 100 Mb/s."""
    params = NetworkParams.fast_ethernet()
    assert 93e6 < params.raw_goodput_bps() < 95e6


def test_udp_framing_close_to_tcp():
    params = NetworkParams.fast_ethernet().with_framing(FramingModel.udp_like())
    assert 92e6 < params.raw_goodput_bps() < 96e6


def test_wire_bytes_includes_per_frame_overhead():
    framing = FramingModel(frame_payload=1000, frame_overhead=100)
    assert framing.wire_bytes(1000) == 1100
    assert framing.wire_bytes(1001) == 1001 + 2 * 100
    assert framing.wire_bytes(0) == 100  # empty control message
    assert framing.wire_bytes(2500) == 2500 + 3 * 100


def test_wire_time_scales_with_size():
    params = NetworkParams.fast_ethernet()
    assert params.wire_time(100_000) > params.wire_time(1_000) * 50


def test_cpu_time_has_fixed_and_per_byte_parts():
    params = NetworkParams(cpu_per_message_s=1e-3, cpu_per_byte_s=1e-6)
    assert params.cpu_time(0) == pytest.approx(1e-3)
    assert params.cpu_time(1000) == pytest.approx(2e-3)


def test_first_frame_delay_bounded():
    params = NetworkParams.fast_ethernet()
    frame_bytes = params.framing.frame_payload + params.framing.frame_overhead
    expected = params.propagation_delay_s + frame_bytes * 8 / params.bandwidth_bps
    assert params.first_frame_delay() == pytest.approx(expected)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        NetworkParams(bandwidth_bps=0)
    with pytest.raises(ConfigurationError):
        NetworkParams(loss_rate=1.0)
    with pytest.raises(ConfigurationError):
        NetworkParams(loss_rate=-0.1)
    with pytest.raises(ConfigurationError):
        NetworkParams(cpu_per_message_s=-1)
    with pytest.raises(ConfigurationError):
        FramingModel(frame_payload=0)
    with pytest.raises(ConfigurationError):
        FramingModel(frame_overhead=-1)


def test_with_loss_returns_modified_copy():
    base = NetworkParams.fast_ethernet()
    lossy = base.with_loss(0.05)
    assert lossy.loss_rate == 0.05
    assert base.loss_rate == 0.0
    assert lossy.bandwidth_bps == base.bandwidth_bps


def test_presets():
    assert NetworkParams.gigabit().bandwidth_bps == 1e9
    assert NetworkParams.lossy_fast_ethernet().loss_rate > 0
