"""Unit tests for the reliable FIFO channel layer (ARQ)."""

import random

import pytest

from repro.net import ChannelStack, Network, NetworkParams
from repro.net.channel import MAX_RETRIES
from repro.sim import Simulator
from repro.sim.trace import TraceLog


def build(loss_rate=0.0, seed=1, retransmit_timeout_s=5e-3, trace=None, **kwargs):
    params = NetworkParams(
        cpu_per_message_s=0.0,
        cpu_per_byte_s=0.0,
        loss_rate=loss_rate,
        retransmit_timeout_s=retransmit_timeout_s,
        **kwargs,
    )
    sim = Simulator()
    net = Network(sim, params, loss_rng=random.Random(seed))
    stacks = {}
    for node in (0, 1):
        stacks[node] = ChannelStack(sim, net.attach(node), params, trace=trace)
    return sim, net, stacks


def test_passthrough_without_loss():
    sim, net, stacks = build(loss_rate=0.0)
    got = []
    stacks[1].on_receive(lambda src, msg: got.append(msg))
    stacks[0].send(1, b"hello")
    sim.run()
    assert got == [b"hello"]
    # No ack traffic in passthrough mode.
    assert net.stats_of(1).messages_tx == 0


def test_lossy_channel_delivers_everything_in_order():
    sim, net, stacks = build(loss_rate=0.3, seed=7)
    got = []
    stacks[1].on_receive(lambda src, msg: got.append(msg))
    sent = [f"m{i}".encode() for i in range(50)]
    for message in sent:
        stacks[0].send(1, message)
    sim.run()
    assert got == sent


def test_retransmissions_actually_happen():
    sim, net, stacks = build(loss_rate=0.5, seed=3)
    got = []
    stacks[1].on_receive(lambda src, msg: got.append(msg))
    for i in range(20):
        stacks[0].send(1, f"m{i}".encode())
    sim.run()
    assert len(got) == 20
    assert net.stats_of(0).messages_lost > 0


def test_gives_up_on_dead_peer():
    sim, net, stacks = build(loss_rate=0.01, retransmit_timeout_s=1e-3)
    net.crash(1)
    stacks[0].send(1, b"into the void")
    sim.run()
    # The sender retried a bounded number of times, then stopped.
    assert net.stats_of(0).messages_tx <= MAX_RETRIES + 2


def test_close_peer_stops_retransmission():
    sim, net, stacks = build(loss_rate=0.01, retransmit_timeout_s=1e-3)
    net.crash(1)
    stacks[0].send(1, b"x")
    sim.run(until=2e-3)
    stacks[0].close_peer(1)
    before = net.stats_of(0).messages_tx
    sim.run(until=0.5)
    assert net.stats_of(0).messages_tx == before


def test_bidirectional_lossy_traffic():
    sim, net, stacks = build(loss_rate=0.2, seed=11)
    got0, got1 = [], []
    stacks[0].on_receive(lambda src, msg: got0.append(msg))
    stacks[1].on_receive(lambda src, msg: got1.append(msg))
    for i in range(30):
        stacks[0].send(1, f"a{i}".encode())
        stacks[1].send(0, f"b{i}".encode())
    sim.run()
    assert got1 == [f"a{i}".encode() for i in range(30)]
    assert got0 == [f"b{i}".encode() for i in range(30)]
