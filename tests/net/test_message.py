"""Unit tests for wire message sizing."""

import pytest

from repro.net.message import Datagram, message_size


class _Sized:
    def wire_size_bytes(self):
        return 1234


def test_message_size_of_bytes_and_str():
    assert message_size(b"abc") == 3
    assert message_size(bytearray(b"abcd")) == 4
    assert message_size("héllo") == len("héllo".encode("utf-8"))


def test_message_size_of_wire_message():
    assert message_size(_Sized()) == 1234


def test_message_size_rejects_unknown_types():
    with pytest.raises(TypeError):
        message_size(12345)


def test_datagram_rejects_negative_size():
    with pytest.raises(ValueError):
        Datagram(src=0, dst=1, payload=None, size_bytes=-1, send_time=0.0)


def test_datagram_ids_are_unique():
    a = Datagram(src=0, dst=1, payload=None, size_bytes=0, send_time=0.0)
    b = Datagram(src=0, dst=1, payload=None, size_bytes=0, send_time=0.0)
    assert a.datagram_id != b.datagram_id
