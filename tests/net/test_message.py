"""Unit tests for wire message sizing."""

import pytest

from repro.net.message import Datagram, message_size
from repro.net.network import Network
from repro.net.params import NetworkParams
from repro.sim.engine import Simulator


class _Sized:
    def wire_size_bytes(self):
        return 1234


def test_message_size_of_bytes_and_str():
    assert message_size(b"abc") == 3
    assert message_size(bytearray(b"abcd")) == 4
    assert message_size("héllo") == len("héllo".encode("utf-8"))


def test_message_size_of_wire_message():
    assert message_size(_Sized()) == 1234


def test_message_size_rejects_unknown_types():
    with pytest.raises(TypeError):
        message_size(12345)


def test_datagram_rejects_negative_size():
    with pytest.raises(ValueError):
        Datagram(src=0, dst=1, payload=None, size_bytes=-1, send_time=0.0)


def test_datagram_ids_are_unique():
    a = Datagram(src=0, dst=1, payload=None, size_bytes=0, send_time=0.0)
    b = Datagram(src=0, dst=1, payload=None, size_bytes=0, send_time=0.0)
    assert a.datagram_id != b.datagram_id


def _run_and_record_datagram_ids():
    """One tiny two-node exchange; returns the arriving datagram ids."""
    sim = Simulator()
    network = Network(sim, NetworkParams.fast_ethernet())
    a = network.attach(0)
    b = network.attach(1)
    b.on_receive(lambda src, msg: None)
    a.on_receive(lambda src, msg: None)

    ids = []
    inner_arrive = network._arrive

    def recording_arrive(datagram):
        ids.append(datagram.datagram_id)
        inner_arrive(datagram)

    network._arrive = recording_arrive
    for _ in range(5):
        a.send(1, b"x" * 100)
        b.send(0, b"y" * 50)
    sim.run()
    return ids


def test_datagram_ids_are_deterministic_across_runs():
    """Back-to-back simulations in one interpreter see identical ids.

    Datagram ids are scoped per Network; a module-global counter would
    make the second run's ids continue where the first stopped,
    breaking the engine's bit-identical-runs determinism claim.
    """
    first = _run_and_record_datagram_ids()
    second = _run_and_record_datagram_ids()
    assert first == second
    assert first  # the exchange actually moved datagrams
