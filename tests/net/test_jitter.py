"""Tests for propagation jitter (FIFO-preserving switch noise)."""

import random

import pytest

from repro.checker import check_all
from repro.errors import ConfigurationError
from repro.net import Network, NetworkParams
from repro.sim import Simulator
from tests.conftest import fast_params, run_broadcasts, small_cluster


def test_jitter_validation():
    with pytest.raises(ConfigurationError):
        NetworkParams(propagation_jitter_s=-1e-6)


def test_jitter_delays_but_preserves_flow_fifo():
    params = NetworkParams(
        cpu_per_message_s=0.0, cpu_per_byte_s=0.0,
        propagation_jitter_s=5e-3,  # huge vs the 0.08 ms wire time
    )
    sim = Simulator()
    net = Network(sim, params, jitter_rng=random.Random(3))
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    for i in range(50):
        a.send(1, f"m{i}".encode(), size_bytes=1_000)
    sim.run()
    assert got == [f"m{i}".encode() for i in range(50)]


def test_jitter_changes_arrival_times_deterministically():
    def arrivals(seed):
        params = NetworkParams(
            cpu_per_message_s=0.0, cpu_per_byte_s=0.0,
            propagation_jitter_s=1e-3,
        )
        sim = Simulator()
        net = Network(sim, params, jitter_rng=random.Random(seed))
        a, b = net.attach(0), net.attach(1)
        times = []
        b.on_receive(lambda src, msg: times.append(sim.now))
        for _ in range(10):
            a.send(1, b"", size_bytes=1_000)
        sim.run()
        return times

    assert arrivals(seed=1) == arrivals(seed=1)
    assert arrivals(seed=1) != arrivals(seed=2)


def test_fsr_correct_under_jitter():
    params = fast_params(propagation_jitter_s=2e-3)
    cluster = small_cluster(n=4, network=params, seed=11)
    result = run_broadcasts(cluster, [(pid, 5, 3_000) for pid in range(4)],
                            max_time_s=120)
    check_all(result)


def test_fsr_correct_under_jitter_with_crash():
    from repro.checker import (
        check_integrity, check_total_order, check_uniformity,
    )

    params = fast_params(propagation_jitter_s=2e-3)
    cluster = small_cluster(n=5, network=params, seed=12)
    cluster.start()
    cluster.run(until=5e-3)
    for pid in range(5):
        for _ in range(5):
            cluster.broadcast(pid, size_bytes=3_000)
    cluster.schedule_crash(0, time=0.03)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0) >= 20
            for p in range(1, 5)
        ),
        max_time_s=120,
    )
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_uniformity(result)
