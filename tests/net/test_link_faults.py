"""Per-directed-link faults on the simulated network: loss, jitter,
and hold-and-release partitions (the sim mirror of a stalled TCP link).
"""

import pytest

from repro.errors import NetworkError
from repro.net import Network, NetworkParams
from repro.sim import Simulator


def build(**overrides):
    defaults = dict(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    defaults.update(overrides)
    sim = Simulator()
    net = Network(sim, NetworkParams(**defaults))
    return sim, net


def test_link_loss_is_directional():
    import random

    sim = Simulator()
    net = Network(
        sim,
        NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0),
        loss_rng=random.Random(1),
    )
    a, b = net.attach(0), net.attach(1)
    got = {0: [], 1: []}
    a.on_receive(lambda src, msg: got[0].append(msg))
    b.on_receive(lambda src, msg: got[1].append(msg))
    net.set_link_loss(0, 1, 0.9999)
    for _ in range(20):
        a.send(1, b"forward")   # impaired direction
        b.send(0, b"reverse")   # untouched direction
    sim.run()
    assert len(got[1]) < 20
    assert len(got[0]) == 20
    net.set_link_loss(0, 1, None)
    a.send(1, b"healed")
    sim.run()
    assert got[1][-1] == b"healed"


def test_link_loss_validation():
    sim, net = build()
    with pytest.raises(NetworkError):
        net.set_link_loss(0, 1, 1.0)
    with pytest.raises(NetworkError):
        net.set_link_loss(0, 1, -0.1)


def test_link_jitter_delays_one_direction_only():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    fwd, rev = [], []
    b.on_receive(lambda src, msg: fwd.append(sim.now))
    a.on_receive(lambda src, msg: rev.append(sim.now))
    net.set_link_extra_jitter(0, 1, 0.05)
    # Jitter is a uniform draw in [0, extra): judge the link over a
    # batch.  The shaped direction spreads out; the clean reverse
    # direction stays deterministic.
    for _ in range(50):
        a.send(1, b"x")
        b.send(0, b"y")
    sim.run()
    assert len(fwd) == len(rev) == 50
    assert max(fwd) > max(rev)
    assert max(fwd) - min(fwd) > max(rev) - min(rev)


def test_blocked_link_holds_then_releases_in_order():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append((sim.now, msg)))
    net.set_link_blocked(0, 1, True)
    a.send(1, b"first")
    a.send(1, b"second")
    sim.run(until=1.0)
    assert got == []  # held, not dropped
    net.set_link_blocked(0, 1, False)
    sim.run()
    assert [msg for _, msg in got] == [b"first", b"second"]
    assert all(at >= 1.0 for at, _ in got)


def test_blocked_link_is_directional():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    a.on_receive(lambda src, msg: got.append(msg))
    net.set_link_blocked(0, 1, True)
    b.send(0, b"reverse still flows")
    sim.run(until=1.0)
    assert got == [b"reverse still flows"]


def test_nested_blocks_need_matching_unblocks():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    net.set_link_blocked(0, 1, True)
    net.set_link_blocked(0, 1, True)  # overlapping partition windows
    a.send(1, b"held")
    net.set_link_blocked(0, 1, False)
    sim.run(until=1.0)
    assert got == []  # one window still open
    net.set_link_blocked(0, 1, False)
    sim.run()
    assert got == [b"held"]


def test_crash_purges_held_frames():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    net.set_link_blocked(0, 1, True)
    a.send(1, b"doomed")
    sim.run(until=0.5)
    net.crash(0)
    net.set_link_blocked(0, 1, False)
    sim.run()
    # A frame a crashed node never got onto the wire must not arrive
    # after its death: the heal discards the dead sender's backlog.
    assert got == []
