"""Unit tests for the switched-fabric / NIC / CPU model."""

import pytest

from repro.errors import NetworkError
from repro.net import Network, NetworkParams
from repro.sim import Simulator


def _zero_cpu_params(**overrides):
    defaults = dict(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    defaults.update(overrides)
    return NetworkParams(**defaults)


def build(params=None):
    sim = Simulator()
    net = Network(sim, params or _zero_cpu_params())
    return sim, net


def test_point_to_point_delivery():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append((src, msg)))
    a.send(1, b"hello")
    sim.run()
    assert got == [(0, b"hello")]


def test_single_message_latency_is_cut_through():
    """Per-hop latency for a large message ~ one wire time, not two."""
    params = _zero_cpu_params()
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    times = []
    b.on_receive(lambda src, msg: times.append(sim.now))
    a.send(1, b"x" * 100_000)
    sim.run()
    wire = params.wire_time(100_000)
    assert wire < times[0] < wire * 1.1


def test_tx_serialisation():
    """Two messages from one sender serialise on its TX path."""
    params = _zero_cpu_params()
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    times = []
    b.on_receive(lambda src, msg: times.append(sim.now))
    a.send(1, b"x" * 50_000)
    a.send(1, b"y" * 50_000)
    sim.run()
    gap = times[1] - times[0]
    assert gap == pytest.approx(params.wire_time(50_000), rel=0.01)


def test_rx_serialisation_of_concurrent_senders():
    """Simultaneous arrivals at one receiver queue (switch buffering)."""
    params = _zero_cpu_params()
    sim, net = build(params)
    s1, s2, r = net.attach(0), net.attach(1), net.attach(2)
    times = []
    r.on_receive(lambda src, msg: times.append((sim.now, src)))
    s1.send(2, b"x" * 50_000)
    s2.send(2, b"y" * 50_000)
    sim.run()
    assert len(times) == 2
    gap = times[1][0] - times[0][0]
    # The second message waits for the first to clear the RX path.
    assert gap == pytest.approx(params.wire_time(50_000), rel=0.01)


def test_separate_collision_domains():
    """Disjoint pairs do not interfere (non-blocking switch)."""
    params = _zero_cpu_params()
    sim, net = build(params)
    nodes = [net.attach(i) for i in range(4)]
    times = {}
    nodes[1].on_receive(lambda src, msg: times.setdefault("pair_a", sim.now))
    nodes[3].on_receive(lambda src, msg: times.setdefault("pair_b", sim.now))
    nodes[0].send(1, b"x" * 100_000)
    nodes[2].send(3, b"y" * 100_000)
    sim.run()
    assert times["pair_a"] == pytest.approx(times["pair_b"])


def test_full_duplex():
    """A node sends and receives simultaneously at full rate."""
    params = _zero_cpu_params()
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    times = []
    a.on_receive(lambda src, msg: times.append(("a", sim.now)))
    b.on_receive(lambda src, msg: times.append(("b", sim.now)))
    a.send(1, b"x" * 100_000)
    b.send(0, b"y" * 100_000)
    sim.run()
    t = dict(times)
    assert t["a"] == pytest.approx(t["b"])  # neither direction waits


def test_cpu_cost_serialises_processing():
    params = NetworkParams(cpu_per_message_s=1e-3, cpu_per_byte_s=0.0)
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    times = []
    b.on_receive(lambda src, msg: times.append(sim.now))
    a.send(1, b"x")
    a.send(1, b"y")
    sim.run()
    # Both tiny messages arrive quickly; CPU spaces the upcalls 1 ms.
    assert times[1] - times[0] == pytest.approx(1e-3, rel=0.05)


def test_cpu_submit_charges_local_work():
    params = NetworkParams(cpu_per_message_s=2e-3, cpu_per_byte_s=0.0)
    sim, net = build(params)
    a = net.attach(0)
    net.attach(1)
    done = []
    a.cpu_submit(0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2e-3)]


def test_crash_stops_traffic_and_drops_inflight():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    a.send(1, b"x" * 100_000)
    # Crash the sender while the message is in flight.
    sim.schedule(1e-4, net.crash, 0)
    sim.run()
    assert got == []
    # Sends from a crashed node vanish silently.
    a.send(1, b"late")
    sim.run()
    assert got == []


def test_crashed_receiver_discards():
    sim, net = build()
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    net.crash(1)
    a.send(1, b"x")
    sim.run()
    assert got == []


def test_send_to_unattached_raises():
    sim, net = build()
    a = net.attach(0)
    with pytest.raises(NetworkError):
        a.send(99, b"x")


def test_loopback_rejected():
    sim, net = build()
    a = net.attach(0)
    with pytest.raises(NetworkError):
        a.send(0, b"x")


def test_double_attach_rejected():
    _, net = build()
    net.attach(0)
    with pytest.raises(NetworkError):
        net.attach(0)


def test_stats_accounting():
    params = _zero_cpu_params()
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    b.on_receive(lambda src, msg: None)
    a.send(1, b"x" * 10_000)
    sim.run()
    assert a.stats.messages_tx == 1
    assert a.stats.bytes_tx == 10_000
    assert a.stats.wire_bytes_tx > 10_000  # framing overhead counted
    assert b.stats.messages_rx == 1
    assert b.stats.bytes_rx == 10_000
    assert net.total_wire_bytes() == a.stats.wire_bytes_tx


def test_message_loss_is_seeded_and_counted():
    import random

    params = _zero_cpu_params(loss_rate=0.5)
    sim = Simulator()
    net = Network(sim, params, loss_rng=random.Random(1))
    a, b = net.attach(0), net.attach(1)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    for _ in range(100):
        a.send(1, b"x")
    sim.run()
    lost = a.stats.messages_lost
    assert 0 < lost < 100
    assert len(got) == 100 - lost


def test_tx_idle_callback_fires_when_queue_drains():
    params = _zero_cpu_params()
    sim, net = build(params)
    a, b = net.attach(0), net.attach(1)
    b.on_receive(lambda src, msg: None)
    idles = []
    a.on_tx_idle(lambda: idles.append(sim.now))
    assert a.tx_idle
    a.send(1, b"x" * 10_000)
    assert not a.tx_idle
    sim.run()
    assert len(idles) == 1
    assert a.tx_idle
