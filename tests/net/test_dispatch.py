"""Unit tests for layer demultiplexing."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ChannelStack, Network, NetworkParams
from repro.net.dispatch import LayerDemux
from repro.sim import Simulator


def build():
    params = NetworkParams(cpu_per_message_s=0.0, cpu_per_byte_s=0.0)
    sim = Simulator()
    net = Network(sim, params)
    demuxes = {}
    for node in (0, 1):
        stack = ChannelStack(sim, net.attach(node), params)
        demuxes[node] = LayerDemux(stack)
    return sim, demuxes


def test_routing_between_layers():
    sim, demuxes = build()
    a_fd = demuxes[0].port("fd")
    a_proto = demuxes[0].port("proto")
    b_fd = demuxes[1].port("fd")
    b_proto = demuxes[1].port("proto")

    fd_got, proto_got = [], []
    b_fd.on_receive(lambda src, msg: fd_got.append(msg))
    b_proto.on_receive(lambda src, msg: proto_got.append(msg))

    a_fd.send(1, b"heartbeat")
    a_proto.send(1, b"data")
    sim.run()
    assert fd_got == [b"heartbeat"]
    assert proto_got == [b"data"]


def test_unreceived_layer_drops_silently():
    sim, demuxes = build()
    a = demuxes[0].port("x")
    demuxes[1].port("x")  # port exists, no handler registered
    a.send(1, b"dropped")
    sim.run()  # must not raise


def test_duplicate_port_rejected():
    _, demuxes = build()
    demuxes[0].port("fd")
    with pytest.raises(ConfigurationError):
        demuxes[0].port("fd")


def test_register_requires_port():
    _, demuxes = build()
    with pytest.raises(ConfigurationError):
        demuxes[0].register("nope", lambda src, msg: None)


def test_port_reports_node_id():
    _, demuxes = build()
    assert demuxes[0].port("p").node_id == 0
