"""Tests for the host CPU model: marshal backpressure and cancellation."""

import pytest

from repro.net import Network, NetworkParams
from repro.sim import Simulator


def build(cpu_fixed=1e-3):
    params = NetworkParams(cpu_per_message_s=cpu_fixed, cpu_per_byte_s=0.0)
    sim = Simulator()
    net = Network(sim, params)
    a, b = net.attach(0), net.attach(1)
    return sim, net, a, b


def test_marshal_jobs_serialise_with_receives():
    """Send-side and receive-side work share one CPU budget."""
    sim, net, a, b = build(cpu_fixed=1e-3)
    done = []
    a.cpu_submit(0, lambda: done.append(("m1", sim.now)))
    a.cpu_submit(0, lambda: done.append(("m2", sim.now)))
    sim.run()
    assert done[0][1] == pytest.approx(1e-3)
    assert done[1][1] == pytest.approx(2e-3)


def test_marshal_backlog_does_not_block_receives():
    """At most one marshal job occupies the CPU queue: a receive that
    arrives behind a deep send backlog waits O(1) jobs, not O(backlog)."""
    sim, net, a, b = build(cpu_fixed=1e-3)
    got = []
    a.on_receive(lambda src, msg: got.append(sim.now))
    # Queue a deep marshal backlog at node 0...
    for _ in range(50):
        a.cpu_submit(0, lambda: None)
    # ...then a message arrives from node 1.
    b.send(0, b"x")
    sim.run()
    # The receive is processed after at most ~2 CPU jobs plus transfer,
    # not after the 50-job (50 ms) backlog.
    assert got[0] < 5e-3


def test_cancelled_marshal_jobs_cost_nothing():
    sim, net, a, b = build(cpu_fixed=1e-3)
    done = []
    handles = [a.cpu_submit(0, lambda i=i: done.append(i)) for i in range(10)]
    # Job 0 was promoted and started executing immediately (past
    # cancellation); jobs 1..8 are still waiting and get dropped free.
    for handle in handles[:9]:
        handle.cancel()
    sim.run()
    assert done == [0, 9]
    assert net.stats_of(0).cpu_busy_s == pytest.approx(2e-3)


def test_cancel_after_completion_is_noop():
    sim, net, a, b = build()
    done = []
    handle = a.cpu_submit(0, lambda: done.append(1))
    sim.run()
    handle.cancel()  # must not raise or corrupt state
    assert done == [1]


def test_marshal_waiting_stat_tracked():
    sim, net, a, b = build()
    for _ in range(5):
        a.cpu_submit(0, lambda: None)
    assert net.stats_of(0).max_tx_cpu_queue >= 3
    sim.run()


def test_crashed_node_drops_marshal_jobs():
    sim, net, a, b = build()
    done = []
    a.cpu_submit(0, lambda: done.append(1))
    net.crash(0)
    handle = a.cpu_submit(0, lambda: done.append(2))
    assert handle.cancelled
    sim.run()
    assert done == []


def test_receive_order_preserved_under_mixed_load():
    """Messages from one sender are still delivered in FIFO order even
    with marshal jobs interleaving."""
    sim, net, a, b = build(cpu_fixed=0.2e-3)
    got = []
    b.on_receive(lambda src, msg: got.append(msg))
    for i in range(5):
        b.cpu_submit(0, lambda: None)
        a.send(1, f"m{i}".encode())
    sim.run()
    assert got == [f"m{i}".encode() for i in range(5)]
