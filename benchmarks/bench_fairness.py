"""Section 4.2.3 — fairness without a throughput trade-off.

The paper's adversarial scenario: two processes at opposite sides of
the ring broadcast continuously.  On a network-bound configuration
(where send slots are genuinely contended):

* FSR with the forward-list scheduler is fair (mid-run Jain ~1) at
  full throughput;
* FSR with the scheduler disabled (own-messages-first) starves the
  sender whose traffic must be relayed by the other;
* a privilege protocol must pick a side of the trade-off: a small
  token quota is fair but burns rotation time, a large quota serves
  senders in long unfair turns.
"""

from repro import FSRConfig
from repro.checker import sender_fairness
from repro.metrics import collect_metrics, format_table
from repro.net import NetworkParams
from repro.protocols.privilege import PrivilegeConfig
from repro.workloads import KToNPattern, run_workload
from _common import fsr_cluster

N = 6
SENDERS = (1, 4)  # opposite sides of the ring
PER_SENDER = 60
SIZE = 20_000

#: Network-bound host model: the wire, not the CPU, is the bottleneck,
#: so send-slot scheduling decisions are what get measured.
NETWORK_BOUND = NetworkParams(
    cpu_per_message_s=30e-6,
    cpu_per_byte_s=2e-9,
)


def _run(protocol, protocol_config):
    cluster = fsr_cluster(
        N, protocol=protocol, protocol_config=protocol_config,
        network=NETWORK_BOUND,
    )
    pattern = KToNPattern(
        senders=SENDERS, messages_per_sender=PER_SENDER, message_bytes=SIZE
    )
    outcome = run_workload(cluster, pattern, max_time_s=1200.0)
    metrics = collect_metrics(outcome)
    midpoint = outcome.start_time + (
        outcome.result.duration_s - outcome.start_time
    ) / 2
    fairness = sender_fairness(outcome.result, senders=list(SENDERS), until=midpoint)
    return metrics.completion_throughput_mbps, fairness


def bench_fairness_two_opposite_senders(benchmark):
    results = {}

    def run():
        results["fsr"] = _run("fsr", FSRConfig(t=1))
        results["fsr (no forward list)"] = _run(
            "fsr", FSRConfig(t=1, fairness=False)
        )
        results["privilege quota=1"] = _run(
            "privilege", PrivilegeConfig(max_per_token=1, idle_hold_s=0.5e-3)
        )
        results["privilege quota=60"] = _run(
            "privilege", PrivilegeConfig(max_per_token=PER_SENDER, idle_hold_s=0.5e-3)
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{mbps:.1f}", f"{fairness:.3f}"]
        for name, (mbps, fairness) in results.items()
    ]
    print()
    print(format_table(
        ["configuration", "Mb/s", "mid-run Jain index"], rows,
        title="Fairness: 2 senders at opposite ring positions (20 KB msgs)",
    ))
    fsr_mbps, fsr_fair = results["fsr"]
    unfair_mbps, unfair_fair = results["fsr (no forward list)"]
    priv_q1_mbps, priv_q1_fair = results["privilege quota=1"]

    # FSR: fair AND fast.
    assert fsr_fair > 0.95
    # The forward list is what provides that fairness.
    assert unfair_fair < fsr_fair
    # Privilege pays throughput for its fairness (token rotations).
    assert priv_q1_mbps < 0.75 * fsr_mbps
    benchmark.extra_info.update(
        {name: (round(m, 1), round(f, 3)) for name, (m, f) in results.items()}
    )
