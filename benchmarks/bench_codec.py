"""Codec hot-path microbenchmark — ns/msg, allocating vs zero-copy.

Times the four paths the live fast path (DESIGN.md §5g) cares about,
over representative ring frames (FwdData with piggybacked acks, SeqData,
AckBatch) at small and large payloads:

* encode: the allocating :func:`encode_frame` (byte-concatenation)
  vs :class:`FrameEncoder` (reusable buffer, cached ``pack_into``);
* decode: plain frames vs the same frames wrapped in a batch frame
  (memoryview entry slicing, one payload copy per message).

Prints ns/msg for each path and the encode speedup; ``--out`` writes
the numbers as JSON.  Pure CPU — no sockets, no event loop — so the
numbers are stable enough for a laptop or a CI smoke run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.fsr.messages import AckBatch, AckMsg, FwdData, SeqData
from repro.live.codec import (
    FrameBatch,
    FrameEncoder,
    decode_frame,
    decode_message,
    encode_frame,
)
from repro.metrics import format_table
from repro.types import MessageId


def _workload(payload_bytes: int) -> List[Any]:
    """A representative mix: data frames dominate, acks piggybacked."""
    acks = [AckMsg(MessageId(i % 4, i), i % 4, bool(i % 2), 0)
            for i in range(4)]
    payload = b"x" * payload_bytes
    mix: List[Any] = []
    for seq in range(8):
        mix.append(FwdData(
            message_id=MessageId(seq % 4, seq),
            origin=seq % 4,
            payload=payload,
            payload_size=payload_bytes,
            view_id=0,
            piggybacked=acks[: seq % 3],
        ))
        mix.append(SeqData(
            message_id=MessageId(seq % 4, seq),
            origin=seq % 4,
            payload=payload,
            payload_size=payload_bytes,
            view_id=0,
            sequence=seq,
            stable=bool(seq % 2),
            piggybacked=acks[: seq % 3],
        ))
    mix.append(AckBatch(acks=acks, view_id=0, watermark=5))
    return mix


def _time_ns_per_msg(fn, messages: List[Any], iterations: int) -> float:
    # Warm up caches (struct tables, encoder buffer growth).
    for message in messages:
        fn(message)
    start = time.perf_counter_ns()
    for _ in range(iterations):
        for message in messages:
            fn(message)
    elapsed = time.perf_counter_ns() - start
    return elapsed / (iterations * len(messages))


def _time_decode_ns_per_msg(
    frames: List[bytes], iterations: int
) -> float:
    for frame in frames:
        decode_frame(frame)
    start = time.perf_counter_ns()
    for _ in range(iterations):
        for frame in frames:
            decode_frame(frame)
    elapsed = time.perf_counter_ns() - start
    return elapsed / (iterations * len(frames))


def _time_batch_decode_ns_per_msg(
    body: bytes, count: int, iterations: int
) -> float:
    decode_message(body)
    start = time.perf_counter_ns()
    for _ in range(iterations):
        decode_message(body)
    elapsed = time.perf_counter_ns() - start
    return elapsed / (iterations * count)


def run_point(payload_bytes: int, iterations: int) -> Dict[str, float]:
    messages = _workload(payload_bytes)
    encoder = FrameEncoder()

    encode_old = _time_ns_per_msg(encode_frame, messages, iterations)
    encode_new = _time_ns_per_msg(
        encoder.encode_frame, messages, iterations
    )
    # Sanity: the fast path must be byte-identical before we time it.
    for message in messages:
        assert encoder.encode_frame(message) == encode_frame(message)

    frames = [encode_frame(message) for message in messages]
    decode_plain = _time_decode_ns_per_msg(frames, iterations)
    batch_body = encode_frame(FrameBatch(messages=messages))[4:]
    decode_batch = _time_batch_decode_ns_per_msg(
        batch_body, len(messages), iterations
    )

    return {
        "payload_bytes": payload_bytes,
        "encode_old_ns": round(encode_old, 1),
        "encode_new_ns": round(encode_new, 1),
        "encode_speedup": round(encode_old / encode_new, 3),
        "decode_plain_ns": round(decode_plain, 1),
        "decode_batch_ns": round(decode_batch, 1),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="codec hot-path microbenchmark (ns/msg)"
    )
    parser.add_argument(
        "--iterations", type=int, default=2000, metavar="N",
        help="timing loop repetitions over the 17-message mix",
    )
    parser.add_argument(
        "--payloads", type=int, nargs="*", default=[64, 1024, 8192],
        metavar="BYTES",
    )
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the numbers as JSON")
    args = parser.parse_args(argv)

    points = [
        run_point(payload, args.iterations) for payload in args.payloads
    ]
    rows = [
        [
            point["payload_bytes"],
            f"{point['encode_old_ns']:.0f}",
            f"{point['encode_new_ns']:.0f}",
            f"{point['encode_speedup']:.2f}x",
            f"{point['decode_plain_ns']:.0f}",
            f"{point['decode_batch_ns']:.0f}",
        ]
        for point in points
    ]
    print(format_table(
        ["payload B", "enc old ns", "enc new ns", "speedup",
         "dec plain ns", "dec batch ns"],
        rows,
        title="Codec hot path — ns/msg (lower is better)",
    ))

    if args.out:
        payload = {
            "schema": "repro.bench_codec/1",
            "bench": "codec_ns_per_msg",
            "iterations": args.iterations,
            "points": points,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
