"""Section 4.3 + Section 2 — round-model analytical validation.

Two results from the paper's analysis section are regenerated exactly:

* §4.3.1  L(i) = 2n + t - i - 1 latency in rounds — validated as an
  equality over a sweep of (n, t, i);
* §4.3.2  throughput >= 1 completed broadcast per round, independent of
  n, t and of the number of senders k.

Plus the Section 2 survey claims, one row per protocol class, measured
in the same model.
"""

from repro.metrics import format_table
from repro.rounds import fsr_latency_formula, measure_latency, measure_throughput
from repro.rounds.analysis import round_factory


def bench_fsr_latency_formula(benchmark):
    mismatches = []
    rows = []

    def run():
        for n, t in ((3, 0), (5, 1), (8, 2), (10, 1)):
            factory = round_factory("fsr", t=t)
            for position in range(n):
                measured = measure_latency(factory, n, position)
                formula = fsr_latency_formula(n, t, position)
                if measured != formula:
                    mismatches.append((n, t, position, measured, formula))
            rows.append([
                n, t,
                measure_latency(factory, n, 1 % n),
                fsr_latency_formula(n, t, 1 % n),
            ])
        return mismatches

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["n", "t", "measured L(1)", "formula 2n+t-2"], rows,
        title="§4.3.1 — FSR latency in rounds (formula validated for ALL i)",
    ))
    assert mismatches == [], mismatches
    benchmark.extra_info["formula_exact"] = True


def bench_fsr_round_throughput(benchmark):
    results = {}

    def run():
        for n, t, k in ((5, 1, 1), (5, 1, 2), (5, 1, 5), (8, 2, 3), (10, 0, 4)):
            result = measure_throughput(
                round_factory("fsr", t=t), n, k,
                warmup_rounds=300, window_rounds=1500,
            )
            results[(n, t, k)] = result.throughput
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, t, k, f"{v:.3f}"] for (n, t, k), v in sorted(results.items())]
    print()
    print(format_table(
        ["n", "t", "k", "msgs/round"], rows,
        title="§4.3.2 — FSR throughput in the round model (>= 1 everywhere)",
    ))
    assert all(v >= 0.999 for v in results.values()), results
    benchmark.extra_info["min_throughput"] = round(min(results.values()), 3)


def bench_section2_class_comparison(benchmark):
    """Per-class throughput in k-to-n patterns (paper Section 2)."""
    protocols = [
        "fsr", "fixed_sequencer", "moving_sequencer",
        "privilege", "communication_history", "destination_agreement",
    ]
    n = 6
    results = {}

    def run():
        for name in protocols:
            factory = (
                round_factory("fsr", t=1) if name == "fsr" else round_factory(name)
            )
            for k in (1, 2, n):
                result = measure_throughput(
                    factory, n, k, warmup_rounds=300, window_rounds=1200
                )
                results[(name, k)] = result.throughput
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{results[(name, k)]:.3f}" for k in (1, 2, n)]
        for name in protocols
    ]
    print()
    print(format_table(
        ["protocol", "k=1", "k=2", f"k={n}"], rows,
        title=f"Section 2 — msgs/round by protocol class (n = {n})",
    ))
    # The paper's headline: only FSR is throughput-efficient (>= 1)
    # across ALL sender patterns.
    for k in (1, 2, n):
        assert results[("fsr", k)] >= 0.999
    for name in protocols[1:]:
        assert min(results[(name, k)] for k in (1, 2, n)) < 0.999, name
    benchmark.extra_info["fsr_only_efficient"] = True
