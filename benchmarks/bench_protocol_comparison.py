"""Section 2 on the cluster — DES throughput of all protocol classes.

The paper evaluates only FSR on the cluster (Section 2 compares the
other classes analytically); this benchmark runs all six protocols on
the same simulated switched LAN and shows the same story in Mb/s:

* FSR stays at the host-limited ~79 Mb/s for every n and every k;
* fixed sequencer collapses as ~raw/(n-1) — the sequencer NIC carries
  every payload n-1 times;
* privilege serialises senders (only the token holder transmits), so it
  also collapses with n;
* the broadcast-based classes survive n-to-n (transmission is spread
  over all senders) but collapse in 1-to-n, where the lone sender's NIC
  must push n-1 copies — FSR's pattern-independence is the headline.
"""

from repro.metrics import format_table
from _common import max_throughput_mbps

PROTOCOLS = [
    "fsr",
    "fixed_sequencer",
    "moving_sequencer",
    "privilege",
    "communication_history",
    "destination_agreement",
]


def bench_n_to_n_throughput_by_protocol(benchmark):
    sizes = (2, 5, 8)
    results = {}

    def run():
        for protocol in PROTOCOLS:
            for n in sizes:
                metrics = max_throughput_mbps(
                    n, protocol=protocol, messages_total=120
                )
                results[(protocol, n)] = metrics.completion_throughput_mbps
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [protocol] + [f"{results[(protocol, n)]:.1f}" for n in sizes]
        for protocol in PROTOCOLS
    ]
    print()
    print(format_table(
        ["protocol"] + [f"n={n}" for n in sizes], rows,
        title="n-to-n aggregate throughput (Mb/s), 100 KB messages",
    ))
    fsr = [results[("fsr", n)] for n in sizes]
    assert max(fsr) - min(fsr) < 0.06 * max(fsr), "FSR flat in n"
    # Fixed sequencer and privilege degrade with n.
    for protocol in ("fixed_sequencer", "privilege"):
        assert results[(protocol, 8)] < 0.5 * results[(protocol, 2)], protocol
        assert results[(protocol, 8)] < 0.3 * results[("fsr", 8)], protocol
    benchmark.extra_info["fsr_n8_mbps"] = round(results[("fsr", 8)], 1)
    benchmark.extra_info["fixed_sequencer_n8_mbps"] = round(
        results[("fixed_sequencer", 8)], 1
    )


def bench_one_to_n_throughput_by_protocol(benchmark):
    """1-to-n: the pattern where every broadcast-payload class pays the
    sender-NIC tax and FSR does not."""
    n = 6
    results = {}

    def run():
        for protocol in PROTOCOLS:
            metrics = max_throughput_mbps(
                n, k=1, protocol=protocol, messages_total=100
            )
            results[protocol] = metrics.completion_throughput_mbps
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[protocol, f"{results[protocol]:.1f}"] for protocol in PROTOCOLS]
    print()
    print(format_table(
        ["protocol", "Mb/s"], rows,
        title=f"1-to-{n} throughput (Mb/s), 100 KB messages",
    ))
    assert results["fsr"] > 70.0
    for protocol in PROTOCOLS[1:]:
        assert results[protocol] < 0.55 * results["fsr"], (
            f"{protocol} should pay the 1-to-n dissemination tax"
        )
    benchmark.extra_info.update(
        {p: round(v, 1) for p, v in results.items()}
    )
