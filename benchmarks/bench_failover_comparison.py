"""Extension — failover cost: FSR vs fixed sequencer.

The paper argues for FSR on failure-free throughput; a natural question
is whether the ring pays for it when the critical process *does* crash.
Both protocols here recover through the same membership/flush machinery
(the fixed sequencer's "election" is the next member taking over), so
the comparison isolates the protocols' own recovery work: worst
per-survivor delivery outage and time to drain the interrupted workload.
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_integrity, check_total_order, check_uniformity
from repro.metrics import format_table

N = 5
PER_SENDER = 30
CRASH_AT = 1.2  # safely mid-stream for the slow baseline too


def _run(protocol: str):
    cluster = build_cluster(
        ClusterConfig(
            n=N, protocol=protocol,
            protocol_config=FSRConfig(t=1) if protocol == "fsr" else None,
            detection_delay_s=20e-3,
        )
    )
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(N):
        for _ in range(PER_SENDER):
            cluster.broadcast(pid, size_bytes=100_000)
    cluster.schedule_crash(0, time=CRASH_AT)
    survivors = range(1, N)
    expected = PER_SENDER * (N - 1)
    cluster.run_until(
        lambda: all(
            sum(1 for d in cluster.nodes[p].app_deliveries if d.origin != 0)
            >= expected
            for p in survivors
        ),
        step_s=0.05,
        max_time_s=1200.0,
    )
    cluster.run(until=cluster.sim.now + 0.05)
    result = cluster.results()
    check_integrity(result)
    check_total_order(result)
    check_uniformity(result)

    outages = []
    for node in survivors:
        times = sorted(d.time for d in result.delivery_logs[node].deliveries)
        before = [t for t in times if t <= CRASH_AT]
        after = [t for t in times if t > CRASH_AT]
        if after:
            resume_from = max(before) if before else CRASH_AT
            outages.append((min(after) - resume_from) * 1e3)
    assert outages, "the crash must land mid-stream for every survivor"
    return max(outages), result.duration_s


def bench_failover_comparison(benchmark):
    results = {}

    def run():
        for protocol in ("fsr", "fixed_sequencer"):
            results[protocol] = _run(protocol)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [protocol, f"{outage:.0f}", f"{duration:.2f}"]
        for protocol, (outage, duration) in results.items()
    ]
    print()
    print(format_table(
        ["protocol", "worst outage (ms)", "total drain (s)"], rows,
        title=f"Failover: critical-process crash at t={CRASH_AT}s "
              f"({N}x{PER_SENDER} x 100 KB)",
    ))
    fsr_outage, fsr_duration = results["fsr"]
    seq_outage, seq_duration = results["fixed_sequencer"]
    # Both recover with a bounded outage.  (The fixed sequencer's is
    # even slightly cheaper per event: its all-acked delivery rule
    # means recovery ships no payload state at all.)
    assert fsr_outage < 300 and seq_outage < 300
    # FSR's steady-state throughput advantage dominates end-to-end.
    assert fsr_duration < 0.6 * seq_duration
    benchmark.extra_info.update(
        {p: {"outage_ms": round(o), "drain_s": round(d, 2)}
         for p, (o, d) in results.items()}
    )
