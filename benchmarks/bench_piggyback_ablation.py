"""Section 4.2.2 ablation — acknowledgment piggy-backing.

The paper: "When all acks are piggy-backed, each TO-broadcast
effectively only sends each message around the ring once, thus
enabling FSR to achieve high throughput."

Two levels of evidence:

* **Round model** (the paper's own cost model, where every message —
  however small — consumes a send slot and a receive slot): disabling
  piggy-backing roughly halves throughput, because ack traffic steals
  every other slot.
* **Cluster simulation** (byte-accurate costs): standalone acks are
  small, so the penalty is a few percent of goodput on small segments
  and negligible on 100 KB messages — an honest quantification of how
  much of the paper's argument is about message *counts* versus bytes.
"""

from repro import FSRConfig
from repro.metrics import format_table
from repro.rounds.analysis import measure_throughput, round_factory
from repro.workloads import KToNPattern
from _common import fsr_cluster, run_pattern

N = 5


def _des_throughput(piggyback: bool, message_bytes: int) -> float:
    cluster = fsr_cluster(
        N, protocol_config=FSRConfig(t=1, piggyback_acks=piggyback)
    )
    pattern = KToNPattern.n_to_n(
        N, max(1, 200 // N), message_bytes=message_bytes
    )
    return run_pattern(cluster, pattern).completion_throughput_mbps


def bench_piggyback_round_model(benchmark):
    results = {}

    def run():
        for k in (2, 3, N):
            on = measure_throughput(
                round_factory("fsr", t=1, piggyback=True), N, k,
                warmup_rounds=300, window_rounds=1500,
            ).throughput
            off = measure_throughput(
                round_factory("fsr", t=1, piggyback=False), N, k,
                warmup_rounds=300, window_rounds=1500,
            ).throughput
            results[k] = (on, off)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [k, f"{on:.3f}", f"{off:.3f}"] for k, (on, off) in sorted(results.items())
    ]
    print()
    print(format_table(
        ["senders k", "piggyback (msgs/round)", "standalone (msgs/round)"],
        rows,
        title=f"§4.2.2 in the round model (n = {N})",
    ))
    for k, (on, off) in results.items():
        # With piggy-backing FSR is throughput-efficient (>= 1/round);
        # without it, ack slots push it below the efficiency threshold.
        assert on >= 0.999, (k, on)
        assert off < 0.999, (k, off)
    assert results[2][1] <= 0.70  # k=2: one in three slots burnt on acks
    benchmark.extra_info["round_on_k2"] = round(results[2][0], 3)
    benchmark.extra_info["round_off_k2"] = round(results[2][1], 3)


def bench_piggyback_cluster(benchmark):
    results = {}

    def run():
        for size in (5_000, 100_000):
            results[("on", size)] = _des_throughput(True, size)
            results[("off", size)] = _des_throughput(False, size)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [size, f"{results[('on', size)]:.1f}", f"{results[('off', size)]:.1f}"]
        for size in (5_000, 100_000)
    ]
    print()
    print(format_table(
        ["message bytes", "piggyback ON (Mb/s)", "eager acks (Mb/s)"], rows,
        title="§4.2.2 on the simulated cluster",
    ))
    # Byte-accurate costs: the penalty exists but is modest (fixed
    # per-message CPU of the extra ack messages), shrinking with size.
    assert results[("off", 5_000)] <= results[("on", 5_000)]
    small_gap = results[("on", 5_000)] - results[("off", 5_000)]
    large_gap = abs(results[("on", 100_000)] - results[("off", 100_000)])
    assert small_gap >= 0
    assert large_gap <= max(small_gap, 0.02 * results[("on", 100_000)])
    benchmark.extra_info.update(
        {f"{mode}_{size}": round(v, 1) for (mode, size), v in results.items()}
    )
