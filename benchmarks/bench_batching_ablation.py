"""Extension — message packing (the paper's related-work ref [20]).

The paper cites Friedman & van Renesse's packing as the classic
throughput booster for total ordering protocols.  This benchmark packs
small application messages over FSR and sweeps the message size,
showing packing recovering most of the large-message goodput budget
that per-message fixed costs otherwise eat.
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.core.api import BroadcastListener
from repro.core.batching import BatchingBroadcast, BatchingConfig
from repro.metrics import format_table

N = 4


def _goodput_mbps(message_bytes: int, batching: bool, messages: int) -> float:
    cluster = build_cluster(
        ClusterConfig(n=N, protocol="fsr", protocol_config=FSRConfig(t=1))
    )
    count = [0]
    senders = {}
    for pid, node in cluster.nodes.items():
        source = node.protocol
        if batching:
            source = BatchingBroadcast(
                cluster.sim, source, origin=pid, config=BatchingConfig()
            )
        senders[pid] = source
    senders[0].set_listener(
        BroadcastListener(lambda *a: count.__setitem__(0, count[0] + 1))
    )
    cluster.start()
    cluster.run(until=0.05)
    start = cluster.sim.now
    per_sender = messages // N
    for pid in range(N):
        for _ in range(per_sender):
            senders[pid].broadcast(b"x" * message_bytes)
    if batching:
        for pid in range(N):
            senders[pid].flush()
    total = per_sender * N
    cluster.run_until(lambda: count[0] >= total, max_time_s=600)
    return total * message_bytes * 8 / (cluster.sim.now - start) / 1e6


def bench_batching_ablation(benchmark):
    sizes = (1_000, 5_000, 100_000)
    results = {}

    def run():
        for size in sizes:
            messages = max(N, min(1_200, 1_200_000 // size * 2))
            results[("plain", size)] = _goodput_mbps(size, False, messages)
            results[("packed", size)] = _goodput_mbps(size, True, messages)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [size,
         f"{results[('plain', size)]:.1f}",
         f"{results[('packed', size)]:.1f}"]
        for size in sizes
    ]
    print()
    print(format_table(
        ["message bytes", "plain (Mb/s)", "packed (Mb/s)"], rows,
        title=f"Extension — message packing over FSR ({N}-to-{N})",
    ))
    # Packing at least doubles 1 KB goodput...
    assert results[("packed", 1_000)] > 2.0 * results[("plain", 1_000)]
    # ...and is neutral at the paper's 100 KB size.
    ratio = results[("packed", 100_000)] / results[("plain", 100_000)]
    assert 0.9 < ratio < 1.1
    benchmark.extra_info.update(
        {f"{mode}_{size}": round(v, 1) for (mode, size), v in results.items()}
    )
