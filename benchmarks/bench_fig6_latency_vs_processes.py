"""Figure 6 — contention-free latency as a function of cluster size.

Paper setup: n-to-n groups of 1..10 processes, 100 KB messages, one
message at a time; the plotted latency is the average over the sender
positions.  Paper result: latency grows linearly with n (up to roughly
230 ms at n = 10 on their testbed).

The absolute slope here depends on the calibrated host model; what must
reproduce is the *linearity* (checked below with a least-squares fit).
"""

from repro.metrics import format_table
from _common import contention_free_latency_ms

SIZES = (2, 3, 4, 5, 6, 7, 8, 9, 10)


def bench_fig6_latency_vs_processes(benchmark):
    latencies = {}

    def run():
        for n in SIZES:
            latencies[n] = contention_free_latency_ms(n)
        return latencies

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[n, f"{latencies[n]:.1f}"] for n in SIZES]
    print()
    print(format_table(
        ["n", "latency (ms)"], rows,
        title="Figure 6 — latency vs number of processes (100 KB, no load)",
    ))
    for n in SIZES:
        benchmark.extra_info[f"latency_ms_n{n}"] = round(latencies[n], 2)

    # Shape check: linear in n.  Fit y = a*n + b and bound the residual.
    xs = list(SIZES)
    ys = [latencies[n] for n in SIZES]
    x_mean = sum(xs) / len(xs)
    y_mean = sum(ys) / len(ys)
    slope = sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, ys)) / sum(
        (x - x_mean) ** 2 for x in xs
    )
    intercept = y_mean - slope * x_mean
    residuals = [abs(y - (slope * x + intercept)) for x, y in zip(xs, ys)]
    assert slope > 0, "latency must grow with n"
    assert max(residuals) < 0.08 * max(ys), "latency must be linear in n"
    benchmark.extra_info["slope_ms_per_process"] = round(slope, 2)
