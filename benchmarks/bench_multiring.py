"""Multi-ring sharded total order — aggregate goodput vs ring count.

The multiring protocol (DESIGN.md §5f) runs S concurrent FSR rings with
rotated sequencer chains and folds their per-ring orders into one global
order via bucket interleaving.  Each ring gets its own (simulated or
real) NIC and protocol core, so aggregate goodput should scale with S
until the bucket skew of the sender-hash caps it — with 8 senders over
S=4 rings the worst ring carries 3 of 8 senders, bounding the ideal
speedup at 8/3 ≈ 2.7x.

The sweep runs the SAME n/sender/message configuration at S ∈ {1, 2, 4}
on the simulator (S=1 exercises the byte-identical single-ring
delegation) and optionally on the live loopback runtime, verifying the
full invariant battery on every run, and writes ``BENCH_multiring.json``.
The acceptance gate is sim goodput at S=4 ≥ 2x S=1.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker.order import check_all
from repro.metrics import collect_metrics, format_table
from repro.metrics.collector import ExperimentMetrics
from repro.net import NetworkParams
from repro.protocols.multiring.config import MultiRingConfig
from repro.workloads import KToNPattern, run_workload

SHARD_COUNTS = (1, 2, 4)
N = 8
SENDERS = 8
MESSAGES_PER_SENDER = 24
MESSAGE_BYTES = 100_000

#: Live sweep shape: small enough for a CI loopback host, same k-to-n
#: closed-loop workload.
LIVE_PROCESSES = 4
LIVE_SENDERS = 4
LIVE_MESSAGES_PER_SENDER = 25
LIVE_MESSAGE_BYTES = 10_000

#: The acceptance gate from the issue: S=4 must at least double S=1.
MIN_SPEEDUP_S4 = 2.0


def sim_point(shards: int, seed: int = 0) -> ExperimentMetrics:
    """One simulated sweep point; the invariant battery gates it."""
    cluster = build_cluster(ClusterConfig(
        n=N,
        protocol="multiring",
        protocol_config=MultiRingConfig(shards=shards, fsr=FSRConfig(t=1)),
        network=NetworkParams.fast_ethernet(),
        seed=seed,
    ))
    pattern = KToNPattern.k_to_n(
        SENDERS, N, MESSAGES_PER_SENDER, message_bytes=MESSAGE_BYTES
    )
    outcome = run_workload(cluster, pattern, max_time_s=1200.0)
    check_all(outcome.result)
    return collect_metrics(outcome)


def _metrics_dict(metrics: ExperimentMetrics) -> Dict[str, float]:
    return {
        "aggregate_throughput_mbps": round(
            metrics.aggregate_throughput_mbps, 2
        ),
        "completion_throughput_mbps": round(
            metrics.completion_throughput_mbps, 2
        ),
        "mean_latency_ms": round(metrics.mean_latency_s * 1e3, 2),
        "p99_latency_ms": round(metrics.p99_latency_s * 1e3, 2),
        "fairness": round(metrics.fairness, 4),
    }


def run_sim_sweep(
    shard_counts: Sequence[int] = SHARD_COUNTS,
) -> Dict[str, Any]:
    """The simulated goodput-vs-S sweep, acceptance-gated."""
    points: Dict[int, ExperimentMetrics] = {
        shards: sim_point(shards) for shards in shard_counts
    }
    base = points[min(shard_counts)].aggregate_throughput_mbps
    sweep = {
        str(shards): {
            **_metrics_dict(metrics),
            "speedup": round(metrics.aggregate_throughput_mbps / base, 3),
        }
        for shards, metrics in points.items()
    }
    payload = {
        "config": {
            "n": N,
            "senders": SENDERS,
            "messages_per_sender": MESSAGES_PER_SENDER,
            "message_bytes": MESSAGE_BYTES,
            "t": 1,
        },
        "points": sweep,
    }
    if 4 in points and 1 in points:
        speedup = (
            points[4].aggregate_throughput_mbps
            / points[1].aggregate_throughput_mbps
        )
        payload["s4_vs_s1_speedup"] = round(speedup, 3)
        assert speedup >= MIN_SPEEDUP_S4, (
            f"S=4 goodput only {speedup:.2f}x S=1 (need >= {MIN_SPEEDUP_S4}x)"
        )
    return payload


def run_live_sweep(
    shard_counts: Sequence[int] = SHARD_COUNTS,
) -> Dict[str, Any]:
    """The live loopback sweep; order-checked, no speedup gate.

    Loopback TCP shares one host's kernel and cores across all rings,
    so live scaling is reported, not asserted — the resource-parallelism
    claim is the simulator's (per-ring NIC/CPU model); the live sweep's
    job is conformance: the same protocol, real sockets, order intact.
    """
    from repro.live.runner import LiveClusterSpec, run_live_cluster

    points: Dict[str, Any] = {}
    for shards in shard_counts:
        spec = LiveClusterSpec(
            processes=LIVE_PROCESSES,
            senders=LIVE_SENDERS,
            t=1,
            shards=shards,
            message_bytes=LIVE_MESSAGE_BYTES,
            messages_per_sender=LIVE_MESSAGES_PER_SENDER,
            sim_compare=False,
        )
        live = run_live_cluster(spec)
        assert live.order_ok, f"live S={shards}: {live.order_error}"
        points[str(shards)] = _metrics_dict(live.metrics)
    return {
        "config": {
            "processes": LIVE_PROCESSES,
            "senders": LIVE_SENDERS,
            "messages_per_sender": LIVE_MESSAGES_PER_SENDER,
            "message_bytes": LIVE_MESSAGE_BYTES,
            "t": 1,
        },
        "points": points,
    }


def build_payload(
    live_shards: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "schema": "repro.bench_multiring/1",
        "bench": "multiring_goodput_vs_shards",
        "sim": run_sim_sweep(),
    }
    if live_shards:
        payload["live"] = run_live_sweep(live_shards)
    return payload


def _print_sweep(title: str, sweep: Dict[str, Any]) -> None:
    rows = [
        [
            shards,
            f"{point['aggregate_throughput_mbps']:.1f}",
            f"{point['completion_throughput_mbps']:.1f}",
            f"{point['mean_latency_ms']:.1f}",
            f"{point.get('speedup', 1.0):.2f}" if "speedup" in point else "-",
        ]
        for shards, point in sorted(
            sweep["points"].items(), key=lambda kv: int(kv[0])
        )
    ]
    print(format_table(
        ["rings S", "agg Mb/s", "compl Mb/s", "mean lat ms", "speedup"],
        rows,
        title=title,
    ))


def bench_multiring_goodput_vs_shards(benchmark):
    """pytest-benchmark entry: the simulated sweep only (CI-friendly)."""
    payload = {}

    def run():
        payload["sim"] = run_sim_sweep()
        return payload

    benchmark.pedantic(run, rounds=1, iterations=1)
    sweep = payload["sim"]
    print()
    _print_sweep("Multiring — sim goodput vs ring count S", sweep)
    for shards, point in sweep["points"].items():
        benchmark.extra_info[f"mbps_s{shards}"] = (
            point["aggregate_throughput_mbps"]
        )
    benchmark.extra_info["s4_vs_s1_speedup"] = sweep.get("s4_vs_s1_speedup")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="multiring goodput-vs-S sweep (sim + optional live)"
    )
    parser.add_argument(
        "--out", default="BENCH_multiring.json", metavar="PATH"
    )
    parser.add_argument(
        "--live-shards", type=int, nargs="*", default=None, metavar="S",
        help="also sweep these ring counts on the live loopback runtime "
             "(e.g. --live-shards 1 2)",
    )
    args = parser.parse_args(argv)

    payload = build_payload(live_shards=args.live_shards)
    _print_sweep("Multiring — sim goodput vs ring count S", payload["sim"])
    if "live" in payload:
        print()
        _print_sweep(
            "Multiring — live loopback goodput vs ring count S",
            payload["live"],
        )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nbench record written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
