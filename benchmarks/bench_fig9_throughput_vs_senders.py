"""Figure 9 — maximum throughput as a function of the sender count.

Paper setup: k-to-5 TO-broadcasts (k = 1..5) of 100 KB messages.
Paper result: throughput does not depend on k — FSR reaches the same
maximum whatever the number of simultaneous senders, which is the
property that distinguishes it from privilege-based protocols.
"""

from repro.metrics import format_table
from _common import max_throughput_mbps

N = 5
SENDER_COUNTS = (1, 2, 3, 4, 5)


def bench_fig9_throughput_vs_senders(benchmark):
    throughput = {}

    def run():
        for k in SENDER_COUNTS:
            throughput[k] = max_throughput_mbps(
                N, k=k, messages_total=180
            ).completion_throughput_mbps
        return throughput

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[k, f"{throughput[k]:.1f}"] for k in SENDER_COUNTS]
    print()
    print(format_table(
        ["senders k", "measured Mb/s"], rows,
        title="Figure 9 — max throughput vs number of senders (k-to-5, 100 KB)",
    ))
    for k in SENDER_COUNTS:
        benchmark.extra_info[f"mbps_k{k}"] = round(throughput[k], 2)

    values = list(throughput.values())
    assert all(72.0 < v < 84.0 for v in values), values
    # Shape: independent of k.
    assert max(values) - min(values) < 0.07 * max(values)
