"""Table 1 — raw network performance (the paper's Netperf baseline).

Paper numbers on 100 Mb/s switched Ethernet: TCP 94 Mb/s, UDP 93 Mb/s.
We stream bulk data point-to-point through the simulated NIC path with
no protocol or middleware above it (that is what Netperf measures) and
report the achieved goodput per framing model.
"""

from repro.metrics import format_table
from repro.net import FramingModel, Network, NetworkParams
from repro.sim import Simulator


def _raw_stream_goodput_mbps(framing: FramingModel, messages: int = 200) -> float:
    params = NetworkParams(
        cpu_per_message_s=0.0,  # Netperf has no middleware above the NIC
        cpu_per_byte_s=0.0,
        framing=framing,
    )
    sim = Simulator()
    net = Network(sim, params)
    sender = net.attach(0)
    receiver = net.attach(1)
    received = []
    receiver.on_receive(lambda src, msg: received.append(sim.now))
    size = 100_000
    for _ in range(messages):
        sender.send(1, b"", size_bytes=size)
    sim.run()
    return messages * size * 8 / received[-1] / 1e6


def bench_table1_raw_network(benchmark):
    rows = []
    results = {}

    def run():
        for name, framing in (
            ("TCP", FramingModel.tcp_like()),
            ("UDP", FramingModel.udp_like()),
        ):
            results[name] = _raw_stream_goodput_mbps(framing)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {"TCP": 94.0, "UDP": 93.0}
    for name in ("TCP", "UDP"):
        rows.append([name, f"{results[name]:.1f}", f"{paper[name]:.0f}"])
        benchmark.extra_info[f"{name.lower()}_mbps"] = round(results[name], 2)
    print()
    print(format_table(
        ["Protocol", "Measured Mb/s", "Paper Mb/s"], rows,
        title="Table 1 — raw point-to-point bandwidth",
    ))
    assert 92.0 < results["TCP"] < 96.0
    assert 92.0 < results["UDP"] < 96.0
