"""Live fast-path ablation — goodput with and without frame coalescing.

Runs the live loopback cluster (DESIGN.md §5g) at small, medium, and
large payloads, once with batching disabled (one frame per syscall —
byte-identical to the pre-fastpath wire) and once with the coalescing
fast path on.  Small payloads are syscall-bound, so that is where
batching pays: the acceptance gate is 64 B goodput >= 1.5x the
unbatched baseline.  Large payloads saturate the loopback with either
path; the sweep reports them to show batching does not regress.

Writes ``BENCH_live_fastpath.json``.  ``--quick`` shrinks durations for
a CI smoke run (gate reported but not asserted — a loaded runner's
loopback numbers are too noisy to fail the build on).  ``--timeline``
additionally runs one instrumented batched point and writes the merged
span timeline for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro.live.runner import LiveClusterSpec, run_live_cluster
from repro.metrics import format_table

PAYLOADS = (64, 1024, 8192)

#: Closed-loop window per sender.  Small on purpose: the sweep's job is
#: to isolate per-frame overhead (syscall + drain await + packet), and a
#: shallow pipeline keeps run-to-run variance tight on a shared host.
WINDOW = 16
PROCESSES = 3
SENDERS = 3
DURATION_S = 3.0
QUICK_DURATION_S = 1.0
#: Full runs repeat each arm and keep the best goodput — the standard
#: guard against scheduler interference on a loopback benchmark.
REPEATS = 2

#: Fast-path knobs for the batched arm; mirrors the sim defaults.
BATCH_BYTES = 60_000
BATCH_MESSAGES = 64
BATCH_DELAY_S = 1e-3

#: The acceptance gate from the issue.
MIN_SPEEDUP_64B = 1.5


def _spec(
    payload_bytes: int,
    batched: bool,
    duration_s: float,
    spans: bool = False,
) -> LiveClusterSpec:
    return LiveClusterSpec(
        processes=PROCESSES,
        senders=SENDERS,
        t=1,
        message_bytes=payload_bytes,
        duration_s=duration_s,
        window=WINDOW,
        sim_compare=False,
        spans=spans,
        batch_bytes=BATCH_BYTES if batched else None,
        batch_messages=BATCH_MESSAGES if batched else None,
        batch_delay_s=BATCH_DELAY_S if batched else None,
    )


def run_point(
    payload_bytes: int, batched: bool, duration_s: float
) -> Dict[str, Any]:
    live = run_live_cluster(_spec(payload_bytes, batched, duration_s))
    assert live.order_ok, (
        f"{payload_bytes} B {'batched' if batched else 'baseline'}: "
        f"{live.order_error}"
    )
    stats = [record["stats"] for record in live.node_records.values()]
    flushes = sum(s["flushes"] for s in stats)
    frames = sum(s["frames_sent"] for s in stats)
    return {
        "payload_bytes": payload_bytes,
        "batched": batched,
        "goodput_mbps": round(live.metrics.aggregate_throughput_mbps, 3),
        "mean_latency_ms": round(live.metrics.mean_latency_s * 1e3, 2),
        "delivered": sum(s["deliveries"] for s in stats),
        "frames_sent": frames,
        "flushes": flushes,
        "frames_per_flush": round(frames / flushes, 2) if flushes else 0.0,
        "acks_ridden": sum(s["acks_ridden"] for s in stats),
        "batches_received": sum(s["batches_received"] for s in stats),
    }


def _best_of(
    payload_bytes: int, batched: bool, duration_s: float, repeats: int
) -> Dict[str, Any]:
    runs = [
        run_point(payload_bytes, batched, duration_s)
        for _ in range(repeats)
    ]
    return max(runs, key=lambda point: point["goodput_mbps"])


def run_sweep(
    duration_s: float,
    payloads: Sequence[int] = PAYLOADS,
    repeats: int = 1,
) -> Dict[str, Any]:
    points: Dict[str, Dict[str, Any]] = {}
    for payload_bytes in payloads:
        baseline = _best_of(payload_bytes, False, duration_s, repeats)
        batched = _best_of(payload_bytes, True, duration_s, repeats)
        # The disabled arm must really be the plain one-frame-per-write
        # wire — otherwise the speedup below compares nothing.
        assert baseline["flushes"] == baseline["frames_sent"]
        assert baseline["batches_received"] == 0
        speedup = (
            batched["goodput_mbps"] / baseline["goodput_mbps"]
            if baseline["goodput_mbps"] else 0.0
        )
        points[str(payload_bytes)] = {
            "baseline": baseline,
            "batched": batched,
            "speedup": round(speedup, 3),
        }
    return points


def build_payload(quick: bool) -> Dict[str, Any]:
    duration_s = QUICK_DURATION_S if quick else DURATION_S
    points = run_sweep(duration_s, repeats=1 if quick else REPEATS)
    payload: Dict[str, Any] = {
        "schema": "repro.bench_live_fastpath/1",
        "bench": "live_goodput_vs_batching",
        "config": {
            "processes": PROCESSES,
            "senders": SENDERS,
            "window": WINDOW,
            "duration_s": duration_s,
            "repeats": 1 if quick else REPEATS,
            "batch_bytes": BATCH_BYTES,
            "batch_messages": BATCH_MESSAGES,
            "batch_delay_s": BATCH_DELAY_S,
            "quick": quick,
        },
        "points": points,
        "min_speedup_64b": MIN_SPEEDUP_64B,
    }
    if "64" in points:
        speedup = points["64"]["speedup"]
        payload["speedup_64b"] = speedup
        if not quick:
            assert speedup >= MIN_SPEEDUP_64B, (
                f"64 B batched goodput only {speedup:.2f}x baseline "
                f"(need >= {MIN_SPEEDUP_64B}x)"
            )
    return payload


def _print_sweep(points: Dict[str, Any]) -> None:
    rows = []
    for payload_bytes, point in sorted(
        points.items(), key=lambda kv: int(kv[0])
    ):
        base, batched = point["baseline"], point["batched"]
        rows.append([
            payload_bytes,
            f"{base['goodput_mbps']:.2f}",
            f"{batched['goodput_mbps']:.2f}",
            f"{point['speedup']:.2f}x",
            f"{batched['frames_per_flush']:.1f}",
            batched["acks_ridden"],
        ])
    print(format_table(
        ["payload B", "base Mb/s", "batched Mb/s", "speedup",
         "frames/flush", "acks ridden"],
        rows,
        title="Live fast path — goodput vs batching",
    ))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="live fast-path batching ablation"
    )
    parser.add_argument(
        "--out", default="BENCH_live_fastpath.json", metavar="PATH"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short CI durations; gate reported, not asserted",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="also run one instrumented batched 64 B point and write "
             "its merged span timeline (jsonl)",
    )
    args = parser.parse_args(argv)

    payload = build_payload(quick=args.quick)
    _print_sweep(payload["points"])

    if args.timeline:
        duration_s = QUICK_DURATION_S if args.quick else DURATION_S
        live = run_live_cluster(_spec(64, True, duration_s, spans=True))
        assert live.order_ok, live.order_error
        if live.timeline is not None:
            live.timeline.write_jsonl(args.timeline)
            payload["timeline"] = args.timeline
            print(f"span timeline written to {args.timeline}")

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    if "speedup_64b" in payload:
        print(f"64 B speedup: {payload['speedup_64b']:.2f}x "
              f"(gate {MIN_SPEEDUP_64B}x, "
              f"{'asserted' if not args.quick else 'reported only'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
