"""Figure 8 — maximum throughput as a function of cluster size.

Paper setup: n-to-n TO-broadcasts of 100 KB messages, n = 1..10.
Paper result: FSR sustains ~79 Mb/s on the 100 Mb/s network and the
throughput is independent of n.
"""

from repro.metrics import format_table
from _common import max_throughput_mbps

SIZES = (2, 3, 4, 5, 6, 7, 8, 9, 10)
PAPER_MBPS = 79.0


def bench_fig8_throughput_vs_processes(benchmark):
    throughput = {}

    def run():
        for n in SIZES:
            throughput[n] = max_throughput_mbps(
                n, messages_total=180
            ).completion_throughput_mbps
        return throughput

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[n, f"{throughput[n]:.1f}", f"{PAPER_MBPS:.0f}"] for n in SIZES]
    print()
    print(format_table(
        ["n", "measured Mb/s", "paper Mb/s"], rows,
        title="Figure 8 — max throughput vs number of processes (n-to-n, 100 KB)",
    ))
    for n in SIZES:
        benchmark.extra_info[f"mbps_n{n}"] = round(throughput[n], 2)

    values = list(throughput.values())
    # Headline number: ~79 Mb/s on the calibrated network.
    assert all(74.0 < v < 84.0 for v in values), values
    # Shape: independent of n.
    assert max(values) - min(values) < 0.06 * max(values)
