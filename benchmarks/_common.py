"""Shared helpers for the benchmark harnesses.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  The helpers here run the underlying
experiments and print the same rows/series the paper reports, so the
output of ``pytest benchmarks/ --benchmark-only`` *is* the reproduction
record (EXPERIMENTS.md quotes it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.metrics import collect_metrics
from repro.metrics.collector import ExperimentMetrics
from repro.net import NetworkParams
from repro.workloads import (
    KToNPattern,
    ThrottledPattern,
    WorkloadPattern,
    run_workload,
)

#: The paper's benchmark message size.
MESSAGE_BYTES = 100_000


def fsr_cluster(
    n: int,
    t: int = 1,
    protocol: str = "fsr",
    protocol_config=None,
    network: Optional[NetworkParams] = None,
    seed: int = 0,
):
    """Build a paper-calibrated cluster (Fast Ethernet defaults)."""
    if protocol == "fsr" and protocol_config is None:
        protocol_config = FSRConfig(t=t)
    return build_cluster(
        ClusterConfig(
            n=n,
            protocol=protocol,
            protocol_config=protocol_config,
            network=network or NetworkParams.fast_ethernet(),
            seed=seed,
        )
    )


def run_pattern(
    cluster, pattern: WorkloadPattern, max_time_s: float = 1200.0
) -> ExperimentMetrics:
    """Run a workload and summarise it."""
    outcome = run_workload(cluster, pattern, max_time_s=max_time_s)
    return collect_metrics(outcome)


def max_throughput_mbps(
    n: int,
    k: Optional[int] = None,
    messages_total: int = 200,
    protocol: str = "fsr",
    protocol_config=None,
    message_bytes: int = MESSAGE_BYTES,
) -> ExperimentMetrics:
    """Saturating k-to-n run; returns its metrics (paper §5.1 method)."""
    k = n if k is None else k
    cluster = fsr_cluster(n, protocol=protocol, protocol_config=protocol_config)
    per_sender = max(1, messages_total // k)
    pattern = KToNPattern.k_to_n(k, n, per_sender, message_bytes=message_bytes)
    return run_pattern(cluster, pattern)


def contention_free_latency_ms(
    n: int, t: int = 1, positions: Optional[Sequence[int]] = None
) -> float:
    """Average single-message latency over sender positions (Figure 6).

    The paper repeats a one-sender/one-message experiment and averages
    the latency observed per sender; with a deterministic simulator one
    run per position is exact.
    """
    positions = list(range(n)) if positions is None else list(positions)
    latencies: List[float] = []
    for position in positions:
        cluster = fsr_cluster(n, t=t)
        cluster.start()
        cluster.run(until=0.05)
        start = cluster.sim.now
        mid = cluster.broadcast(position, size_bytes=MESSAGE_BYTES)
        cluster.run_until(lambda: cluster.all_correct_delivered(1), max_time_s=60)
        completion = cluster.results().completion_time(mid)
        latencies.append((completion - start) * 1e3)
    return sum(latencies) / len(latencies)


def throttled_point(
    offered_mbps: float, n: int = 5, messages_per_sender: int = 25
) -> Tuple[float, float]:
    """One Figure-7 point: (achieved Mb/s, mean latency ms)."""
    cluster = fsr_cluster(n)
    pattern = ThrottledPattern(
        senders=tuple(range(n)),
        messages_per_sender=messages_per_sender,
        message_bytes=MESSAGE_BYTES,
        offered_load_bps=offered_mbps * 1e6,
    )
    metrics = run_pattern(cluster, pattern)
    return metrics.aggregate_throughput_mbps, metrics.mean_latency_s * 1e3
