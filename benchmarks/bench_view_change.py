"""Section 4.2.1 — view change cost under load.

Crashes the leader in the middle of a saturating n-to-n run and
measures:

* the per-survivor **delivery outage** — the gap between the last
  pre-crash and first post-recovery delivery, which is bounded by
  failure detection + flush round-trips + merged-state transfer;
* **drain efficiency** — total run time versus an identical run with
  no crash (recovery must not cost more than a modest constant on top
  of re-circulating the interrupted messages).

The paper optimises the failure-free path and treats view changes as
rare; the claim checked here is that recovery is correct and its cost
bounded, not that it is free.
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.checker import check_integrity, check_total_order, check_uniformity
from repro.metrics import format_table

N = 5
PER_SENDER = 60
CRASH_AT = 1.0
DETECTION_DELAY = 20e-3


def _run(crash: bool):
    cluster = build_cluster(
        ClusterConfig(
            n=N, protocol="fsr", protocol_config=FSRConfig(t=1),
            detection_delay_s=DETECTION_DELAY,
        )
    )
    cluster.start()
    cluster.run(until=0.05)
    for pid in range(N):
        for _ in range(PER_SENDER):
            cluster.broadcast(pid, size_bytes=100_000)
    crashed = set()
    if crash:
        cluster.schedule_crash(0, time=CRASH_AT)
        crashed = {0}
    survivors = [p for p in range(N) if p not in crashed]
    expected = PER_SENDER * (N - len(crashed))
    cluster.run_until(
        lambda: all(
            sum(
                1 for d in cluster.nodes[p].app_deliveries
                if d.origin not in crashed
            ) >= expected
            for p in survivors
        ),
        step_s=0.05,
        max_time_s=1200.0,
    )
    cluster.run(until=cluster.sim.now + 0.05)
    return cluster, cluster.results()


def bench_leader_crash_outage_and_drain(benchmark):
    measurements = {}

    def run():
        _, baseline = _run(crash=False)
        cluster, crashed = _run(crash=True)
        check_integrity(crashed)
        check_total_order(crashed)
        check_uniformity(crashed)
        outages = {}
        for node in range(1, N):
            times = sorted(d.time for d in crashed.delivery_logs[node].deliveries)
            before = [t for t in times if t <= CRASH_AT]
            after = [t for t in times if t > CRASH_AT]
            outages[node] = (min(after) - max(before)) * 1e3
        measurements["max_outage_ms"] = max(outages.values())
        measurements["baseline_s"] = baseline.duration_s
        measurements["crashed_s"] = crashed.duration_s
        measurements["overhead_s"] = crashed.duration_s - baseline.duration_s
        return measurements

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["worst survivor outage (ms)", f"{measurements['max_outage_ms']:.0f}"],
            ["no-crash run time (s)", f"{measurements['baseline_s']:.2f}"],
            ["leader-crash run time (s)", f"{measurements['crashed_s']:.2f}"],
            ["recovery overhead (s)", f"{measurements['overhead_s']:.2f}"],
        ],
        title=f"View change under load — leader crash at t={CRASH_AT}s (n={N}, t=1)",
    ))
    # Outage bounded by detection + flush + merged-state transfer.
    assert measurements["max_outage_ms"] < 300.0
    # Note: the crashed run has *less* total payload to deliver (the
    # dead leader's undelivered messages are dropped), so the overhead
    # bound below is conservative.
    assert measurements["overhead_s"] < 1.0
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in measurements.items()}
    )
