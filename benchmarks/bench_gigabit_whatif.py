"""What-if extension — the paper's setup on a gigabit network.

Not in the paper (their testbed was 100 Mb/s); this bench answers the
natural follow-up question: does FSR's flat-throughput property carry
over when the wire is 10x faster?  With the calibrated host model the
CPU stays the bottleneck, so throughput remains flat in ``n`` at the
(higher) per-host budget, and the fixed sequencer still collapses —
i.e. the paper's conclusions are not an artefact of Fast Ethernet.
"""

from repro.metrics import format_table
from repro.net import NetworkParams
from _common import fsr_cluster, run_pattern
from repro.workloads import KToNPattern


def _throughput(protocol: str, n: int) -> float:
    cluster = fsr_cluster(n, protocol=protocol, network=NetworkParams.gigabit())
    pattern = KToNPattern.n_to_n(n, max(1, 120 // n), message_bytes=100_000)
    return run_pattern(cluster, pattern).completion_throughput_mbps


def bench_gigabit_whatif(benchmark):
    results = {}

    def run():
        for protocol in ("fsr", "fixed_sequencer"):
            for n in (2, 5, 8):
                results[(protocol, n)] = _throughput(protocol, n)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [protocol] + [f"{results[(protocol, n)]:.0f}" for n in (2, 5, 8)]
        for protocol in ("fsr", "fixed_sequencer")
    ]
    print()
    print(format_table(
        ["protocol", "n=2", "n=5", "n=8"], rows,
        title="What-if: 1 Gb/s network, faster hosts (Mb/s)",
    ))
    fsr = [results[("fsr", n)] for n in (2, 5, 8)]
    # Flat in n, far beyond the Fast Ethernet budget.
    assert min(fsr) > 300
    assert max(fsr) - min(fsr) < 0.08 * max(fsr)
    # The sequencer bottleneck persists at any line rate.
    assert results[("fixed_sequencer", 8)] < 0.55 * results[("fsr", 8)]
    benchmark.extra_info["fsr_mbps"] = [round(v) for v in fsr]
