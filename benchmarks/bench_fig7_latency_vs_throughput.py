"""Figure 7 — latency as a function of offered throughput.

Paper setup: 5 processes, n-to-n, 100 KB messages, senders throttled to
a given aggregate rate; plot mean latency against achieved throughput.
Paper result: latency stays roughly flat (~130 ms) until the maximum
throughput (~79 Mb/s) is reached, then rises sharply as queues build.
"""

from repro.metrics import format_table
from _common import throttled_point

OFFERED_MBPS = (10, 20, 30, 40, 50, 60, 70, 75, 85, 95)


def bench_fig7_latency_vs_throughput(benchmark):
    points = {}

    def run():
        for offered in OFFERED_MBPS:
            # Overloaded points run longer: the queue growth that
            # produces the paper's latency spike needs sustained input.
            messages = 45 if offered >= 85 else 25
            points[offered] = throttled_point(
                offered, messages_per_sender=messages
            )
        return points

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [offered, f"{points[offered][0]:.1f}", f"{points[offered][1]:.1f}"]
        for offered in OFFERED_MBPS
    ]
    print()
    print(format_table(
        ["offered Mb/s", "achieved Mb/s", "mean latency (ms)"], rows,
        title="Figure 7 — latency vs throughput (n = 5, 100 KB)",
    ))
    for offered in OFFERED_MBPS:
        achieved, latency = points[offered]
        benchmark.extra_info[f"latency_ms_at_{offered}"] = round(latency, 1)

    # Shape checks: flat below saturation, sharp rise beyond it.
    low_band = sorted(points[o][1] for o in (10, 20, 30, 40, 50, 60))
    low_median = low_band[len(low_band) // 2]
    assert max(low_band) < 2.0 * min(low_band), "sub-saturation latency ~flat"
    saturated = points[95][1]
    assert saturated > 2.5 * low_median, "post-saturation latency spikes"
    # Achieved throughput caps near the protocol maximum.
    assert points[95][0] < 85.0
