"""§4.3.1 extension — leader rotation evens out per-process latency.

The paper: "The position of the TO-broadcasting process in the ring has
an influence on the latency [L(i) = 2n + t - i - 1].  In order to
evenly distribute the latency for all processes, the role of the leader
can be periodically moved to the next process in the ring."

Two results:

* **Round model** (where the position effect lives): measured
  per-process latency under every ring rotation; with a static leader
  the spread across processes is ``n - 2`` rounds, and averaging over a
  full rotation cycle makes every process's mean latency identical.
* **Cluster simulation**: an honest negative — with byte-accurate costs
  the position effect is tiny (the extra hops of distant senders are
  small ack messages, not payload transfers), so rotation buys little
  on the simulated cluster.  The functional rotation machinery itself
  is exercised by ``tests/vsc/test_rotation.py``.
"""

from typing import Dict, Tuple

from repro.metrics import format_table
from repro.rounds.engine import RoundEngine
from repro.rounds.fsr_round import FSRRoundProcess, fsr_latency_formula

N = 6
T = 1


def _latency_for(members: Tuple[int, ...], sender: int) -> int:
    """Rounds until everyone delivers one broadcast from ``sender``."""
    completions = {}

    def observer(pid, mid, seq, rnd):
        completions[pid] = rnd

    engine = RoundEngine()
    for pid in members:
        engine.attach(
            FSRRoundProcess(
                pid, members, t=T,
                supply=1 if pid == sender else 0,
                deliver_cb=observer,
            )
        )
    engine.run_until(lambda: len(completions) == len(members), max_rounds=5000)
    return max(completions.values()) + 1


def bench_leader_rotation_evens_latency(benchmark):
    static: Dict[int, int] = {}
    rotating_mean: Dict[int, float] = {}

    def run():
        base = tuple(range(N))
        for pid in range(N):
            static[pid] = _latency_for(base, pid)
        # One full rotation cycle: each process occupies each position.
        totals = {pid: 0 for pid in range(N)}
        for shift in range(N):
            members = base[shift:] + base[:shift]
            for pid in range(N):
                totals[pid] += _latency_for(members, pid)
        for pid in range(N):
            rotating_mean[pid] = totals[pid] / N
        return static, rotating_mean

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [pid, static[pid], f"{rotating_mean[pid]:.2f}"] for pid in range(N)
    ]
    print()
    print(format_table(
        ["process", "static leader (rounds)", "rotating mean (rounds)"], rows,
        title=f"§4.3.1 — per-process broadcast latency, round model (n={N}, t={T})",
    ))

    # Static: the formula's position dependence.  The best case is the
    # leader (n + t - 1), the worst its successor (2n + t - 2), so the
    # spread is exactly n - 1 rounds.
    assert static[1] == fsr_latency_formula(N, T, 1)
    static_spread = max(static.values()) - min(static.values())
    assert static_spread == N - 1, static

    # Rotating: every process sees the same mean latency.
    values = list(rotating_mean.values())
    assert max(values) - min(values) < 1e-9, rotating_mean
    benchmark.extra_info["static_spread_rounds"] = static_spread
    benchmark.extra_info["rotating_mean_rounds"] = values[0]
