"""Section 4.1 ablation — uniform message size via segmentation.

The paper: "because of the ring dissemination topology, uniform message
size is necessary in order to avoid that large messages stall the
smaller messages".  Setup here: four processes stream 100 KB bulk
messages at a moderate (sub-saturation) rate while a fifth process
periodically sends 1 KB latency-sensitive messages.  Without
segmentation each small message waits behind whole 100 KB transfers at
every hop; with 8 KB segments the head-of-line unit shrinks by an
order of magnitude, and so does the small messages' latency.
"""

from repro import ClusterConfig, FSRConfig, build_cluster
from repro.metrics import format_table, percentile

N = 5
SMALL_SENDER = 2
BULK_SENDERS = (0, 1, 3, 4)


def _small_message_latencies(segment_size):
    cluster = build_cluster(
        ClusterConfig(
            n=N, protocol="fsr",
            protocol_config=FSRConfig(t=1, segment_size=segment_size),
        )
    )
    cluster.start()
    cluster.run(until=0.05)

    total = [0]
    # Bulk: each sender offers one 100 KB message every 60 ms
    # (~53 Mb/s aggregate, below the ~79 Mb/s capacity).
    remaining = {pid: 25 for pid in BULK_SENDERS}

    def send_bulk(pid):
        if remaining[pid] <= 0:
            return
        remaining[pid] -= 1
        cluster.broadcast(pid, size_bytes=100_000)
        total[0] += 1
        cluster.sim.schedule(0.060, send_bulk, pid)

    for index, pid in enumerate(BULK_SENDERS):
        cluster.sim.schedule(index * 0.015, send_bulk, pid)

    small_ids = []

    def send_small():
        if len(small_ids) >= 12:
            return
        small_ids.append(cluster.broadcast(SMALL_SENDER, size_bytes=1_000))
        total[0] += 1
        cluster.sim.schedule(0.1, send_small)

    cluster.sim.schedule(0.2, send_small)  # after the pipeline fills
    cluster.run_until(
        lambda: cluster.all_correct_delivered(12 + 25 * len(BULK_SENDERS)),
        max_time_s=600,
    )
    cluster.run(until=cluster.sim.now + 0.05)
    result = cluster.results()

    submit = {r.message_id: r.submit_time for r in result.broadcasts}
    return [
        (result.completion_time(mid) - submit[mid]) * 1e3 for mid in small_ids
    ]


def bench_segmentation_ablation(benchmark):
    results = {}

    def run():
        results["off"] = _small_message_latencies(segment_size=None)
        results["on (8 KB)"] = _small_message_latencies(segment_size=8_000)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, values in results.items():
        rows.append([
            mode,
            f"{sum(values) / len(values):.1f}",
            f"{percentile(values, 99):.1f}",
        ])
    print()
    print(format_table(
        ["segmentation", "mean 1 KB latency (ms)", "p99 (ms)"], rows,
        title="Ablation — segmentation: 1 KB messages among 100 KB bulk",
    ))
    mean_off = sum(results["off"]) / len(results["off"])
    mean_on = sum(results["on (8 KB)"]) / len(results["on (8 KB)"])
    assert mean_on < 0.6 * mean_off, (mean_on, mean_off)
    benchmark.extra_info["mean_ms_off"] = round(mean_off, 1)
    benchmark.extra_info["mean_ms_on"] = round(mean_on, 1)
